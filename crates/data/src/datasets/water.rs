//! Simulacrum of the Slovenian river water quality dataset (Džeroski et al.
//! 2000).
//!
//! The real data: 1060 river samples, 14 ordinal bioindicator attributes
//! (taxon densities recorded at qualitative levels 0/1/3/5) used as
//! descriptions, and 16 physical/chemical parameters used as targets. The
//! §III-D case study finds the location pattern
//! `Gammarus fossarum <= 0 AND Tubifex >= 3` (91 records): polluted sites
//! with elevated biological/chemical oxygen demand — and, notably, a spread
//! pattern with **larger**-than-expected variance along a sparse BOD/KMnO₄
//! direction.
//!
//! The generator drives everything from a pollution latent variable:
//! sensitive taxa (Gammarus, stonefly larvae…) disappear as pollution
//! rises, tolerant taxa (Tubifex, sludge worms…) bloom, oxygen-demand
//! chemistry rises in mean *and in variance* (heteroscedasticity is the
//! planted cause of the higher-variance spread pattern).

use crate::column::Column;
use crate::table::Dataset;
use sisd_linalg::Matrix;
use sisd_stats::Xoshiro256pp;

/// Number of samples.
pub const N: usize = 1060;
/// Number of bioindicator description attributes.
pub const DX: usize = 14;
/// Number of chemical target attributes.
pub const DY: usize = 16;

/// Maps a continuous abundance response to the expert's ordinal density
/// levels: 0 (absent), 1 (incidental), 3 (frequent), 5 (abundant).
fn density_level(response: f64) -> f64 {
    if response < 0.0 {
        0.0
    } else if response < 0.8 {
        1.0
    } else if response < 1.8 {
        3.0
    } else {
        5.0
    }
}

/// Generates the water-quality simulacrum.
pub fn water_quality_synthetic(seed: u64) -> Dataset {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);

    // Pollution latent per sample: mixture of clean and polluted rivers.
    let pollution: Vec<f64> = (0..N)
        .map(|_| {
            if rng.bernoulli(0.25) {
                rng.normal_with(1.6, 0.7) // polluted sites
            } else {
                rng.normal_with(-0.5, 0.6) // clean sites
            }
        })
        .collect();

    // --- Bioindicators (ordinal 0/1/3/5) ---
    // (name, base abundance, pollution loading). Negative loading =
    // pollution-sensitive taxon.
    let taxa: [(&str, f64, f64); DX] = [
        ("Amphipoda_Gammarus_fossarum", 1.2, -1.5),
        ("Plecoptera_Leuctra", 0.9, -1.3),
        ("Ephemeroptera_Baetis", 1.4, -0.8),
        ("Trichoptera_Hydropsyche", 1.1, -0.4),
        ("Oligochaeta_Tubifex", 0.45, 1.3),
        ("Diptera_Chironomus_thummi", -0.2, 1.4),
        ("Hirudinea_Erpobdella", 0.2, 0.9),
        ("Gastropoda_Radix", 0.7, 0.3),
        ("Isopoda_Asellus_aquaticus", 0.1, 1.1),
        ("Alga_Cladophora", 0.5, 0.8),
        ("Alga_Diatoma", 1.0, -0.2),
        ("Moss_Fontinalis", 0.8, -0.9),
        ("Plant_Ranunculus", 0.6, -0.3),
        ("Alga_Spirogyra", 0.3, 0.5),
    ];

    let mut desc_names = Vec::with_capacity(DX);
    let mut desc_cols = Vec::with_capacity(DX);
    for (name, base, loading) in taxa {
        let vals: Vec<f64> = (0..N)
            .map(|i| density_level(base + loading * pollution[i] + rng.normal_with(0.0, 0.5)))
            .collect();
        desc_names.push(name.to_string());
        desc_cols.push(Column::Numeric(vals));
    }

    // --- Chemical targets ---
    // (name, base, pollution mean loading, base sd, pollution sd loading).
    // BOD and KMnO4/K2Cr2O7 (oxygen demand) are strongly heteroscedastic:
    // polluted sites are both higher and far more variable.
    let chems: [(&str, f64, f64, f64, f64); DY] = [
        ("std_temp", 12.0, 0.4, 3.0, 0.0),
        ("std_pH", 8.0, -0.1, 0.3, 0.0),
        ("conduct", 380.0, 90.0, 80.0, 0.0),
        ("o2", 9.5, -1.6, 1.0, 0.0),
        ("o2sat", 92.0, -12.0, 8.0, 0.5),
        ("co2", 3.0, 1.2, 1.0, 0.0),
        ("hardness", 16.0, 2.0, 4.0, 0.0),
        ("no2", 0.05, 0.012, 0.02, 0.0),
        ("no3", 7.0, 2.5, 2.5, 0.0),
        ("nh4", 0.3, 0.15, 0.2, 0.0),
        ("po4", 0.15, 0.05, 0.08, 0.0),
        ("cl", 12.0, 9.0, 4.0, 0.0),
        ("sio2", 5.0, 0.6, 1.5, 0.0),
        ("kmno4", 12.0, 4.5, 2.5, 7.0),
        ("k2cr2o7", 18.0, 6.0, 5.0, 5.0),
        ("bod", 3.0, 1.8, 0.8, 4.0),
    ];

    let mut targets = Matrix::zeros(N, DY);
    let mut target_names = Vec::with_capacity(DY);
    for (j, (name, base, mean_load, sd, sd_load)) in chems.into_iter().enumerate() {
        target_names.push(name.to_string());
        for i in 0..N {
            // Each parameter responds to its own noisy view of the
            // pollution level; perfectly shared latents would let the
            // spread optimizer cancel the pollution gradient exactly,
            // which real chemistry does not allow.
            let q = pollution[i] + rng.normal_with(0.0, 0.4);
            let sd_here = (sd + sd_load * q.max(0.0)).max(sd * 0.3);
            let v = base + mean_load * q + rng.normal_with(0.0, sd_here);
            targets[(i, j)] = v;
        }
    }

    Dataset::new(
        "water-quality",
        desc_names,
        desc_cols,
        target_names,
        targets,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitSet;

    fn paper_subgroup(d: &Dataset) -> BitSet {
        let gammarus = d
            .desc_col(d.desc_index("Amphipoda_Gammarus_fossarum").unwrap())
            .as_numeric()
            .unwrap()
            .to_vec();
        let tubifex = d
            .desc_col(d.desc_index("Oligochaeta_Tubifex").unwrap())
            .as_numeric()
            .unwrap()
            .to_vec();
        BitSet::from_fn(d.n(), |i| gammarus[i] <= 0.0 && tubifex[i] >= 3.0)
    }

    #[test]
    fn shape_matches_paper() {
        let d = water_quality_synthetic(1);
        assert_eq!(d.n(), 1060);
        assert_eq!(d.dx(), 14);
        assert_eq!(d.dy(), 16);
    }

    #[test]
    fn bioindicators_use_ordinal_levels() {
        let d = water_quality_synthetic(2);
        for j in 0..d.dx() {
            for &v in d.desc_col(j).as_numeric().unwrap() {
                assert!(v == 0.0 || v == 1.0 || v == 3.0 || v == 5.0, "level {v}");
            }
        }
    }

    #[test]
    fn paper_subgroup_exists_and_is_polluted() {
        let d = water_quality_synthetic(3);
        let ext = paper_subgroup(&d);
        // Paper reports 91 of 1060 records; accept a generous band.
        let cnt = ext.count();
        assert!((40..300).contains(&cnt), "paper subgroup has {cnt} records");
        let sub = d.target_mean(&ext);
        let all = d.target_mean_all();
        let bod = d.target_names().iter().position(|n| n == "bod").unwrap();
        let kmno4 = d.target_names().iter().position(|n| n == "kmno4").unwrap();
        let o2 = d.target_names().iter().position(|n| n == "o2").unwrap();
        assert!(sub[bod] > all[bod] + 1.0, "BOD not elevated");
        assert!(sub[kmno4] > all[kmno4] + 2.0, "KMnO4 not elevated");
        assert!(sub[o2] < all[o2] - 0.5, "O2 not depressed");
    }

    #[test]
    fn subgroup_bod_variance_exceeds_clean_sites() {
        // The heteroscedastic design: polluted subgroup must have higher
        // BOD variance than its complement (the planted Fig. 9 story).
        let d = water_quality_synthetic(4);
        let ext = paper_subgroup(&d);
        let rest = ext.complement();
        let bod = d.target_names().iter().position(|n| n == "bod").unwrap();
        let mut w = vec![0.0; d.dy()];
        w[bod] = 1.0;
        let v_sub = d.target_variance_along(&ext, &w);
        let v_rest = d.target_variance_along(&rest, &w);
        assert!(
            v_sub > 1.5 * v_rest,
            "BOD variance not elevated: {v_sub} vs {v_rest}"
        );
    }

    #[test]
    fn deterministic() {
        let a = water_quality_synthetic(11);
        let b = water_quality_synthetic(11);
        assert_eq!(a.targets().as_slice(), b.targets().as_slice());
    }
}
