//! Simulacrum of the UCI *Communities and Crime* dataset.
//!
//! The real data (n = 1994 US districts, 122 description attributes, one
//! target: violent crimes per population, all normalized to [0, 1]) cannot
//! be redistributed here. This generator reproduces the statistical story
//! the paper's introduction and Fig. 1 rely on:
//!
//! * one description attribute, `PctIlleg` (fraction of mothers unmarried at
//!   child birth), is strongly coupled to the target through a latent
//!   socio-economic disadvantage factor;
//! * the subgroup `PctIlleg >= 0.39` covers ≈ 20% of the districts and has a
//!   violent-crime mean around 0.53 versus ≈ 0.25 overall;
//! * the remaining 121 attributes are a mixture of weakly informative
//!   (correlated with the same latent factor at lower loadings) and pure
//!   noise attributes, giving the beam search a realistic haystack.

use super::clamp01;
use crate::column::Column;
use crate::table::Dataset;
use sisd_linalg::Matrix;
use sisd_stats::Xoshiro256pp;

/// Number of districts, matching the UCI data.
pub const N: usize = 1994;
/// Number of description attributes, matching the UCI data.
pub const DX: usize = 122;

/// Generates the crime simulacrum.
pub fn crime_synthetic(seed: u64) -> Dataset {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);

    // Latent disadvantage factor per district.
    let z: Vec<f64> = (0..N).map(|_| rng.normal()).collect();

    // Target: violent crime rate in [0, 1].
    let mut targets = Matrix::zeros(N, 1);
    for i in 0..N {
        let noise = rng.normal();
        targets[(i, 0)] = clamp01(0.21 + 0.23 * z[i] + 0.09 * noise);
    }

    let mut desc_names: Vec<String> = Vec::with_capacity(DX);
    let mut desc_cols: Vec<Column> = Vec::with_capacity(DX);

    // The headline attribute. Calibrated so that `PctIlleg >= 0.39` covers
    // about a fifth of the data (the paper reports 20.5%).
    let pct_illeg: Vec<f64> = z
        .iter()
        .map(|&zi| clamp01(0.26 + 0.15 * zi + 0.05 * rng.normal()))
        .collect();
    desc_names.push("PctIlleg".into());
    desc_cols.push(Column::Numeric(pct_illeg));

    // 40 weakly informative attributes with decaying loadings on z; named
    // after the flavor of the real data's demographic columns.
    const INFORMATIVE: usize = 40;
    for k in 0..INFORMATIVE {
        let loading = 0.12 * (1.0 - k as f64 / INFORMATIVE as f64);
        let sign = if k % 3 == 0 { -1.0 } else { 1.0 };
        let vals: Vec<f64> = z
            .iter()
            .map(|&zi| clamp01(0.5 + sign * loading * zi + 0.12 * rng.normal()))
            .collect();
        desc_names.push(format!("demo_{k:03}"));
        desc_cols.push(Column::Numeric(vals));
    }

    // The rest are uninformative noise attributes in [0, 1].
    for k in 0..(DX - 1 - INFORMATIVE) {
        let vals: Vec<f64> = (0..N).map(|_| rng.uniform()).collect();
        desc_names.push(format!("noise_{k:03}"));
        desc_cols.push(Column::Numeric(vals));
    }

    Dataset::new(
        "crime",
        desc_names,
        desc_cols,
        vec!["ViolentCrimesPerPop".into()],
        targets,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitSet;

    #[test]
    fn shape_matches_uci() {
        let d = crime_synthetic(1);
        assert_eq!(d.n(), 1994);
        assert_eq!(d.dx(), 122);
        assert_eq!(d.dy(), 1);
    }

    #[test]
    fn deterministic() {
        let a = crime_synthetic(42);
        let b = crime_synthetic(42);
        assert_eq!(a.targets().as_slice(), b.targets().as_slice());
    }

    #[test]
    fn target_is_a_rate() {
        let d = crime_synthetic(2);
        for i in 0..d.n() {
            let v = d.targets()[(i, 0)];
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn headline_subgroup_story_holds() {
        let d = crime_synthetic(3);
        let pct = d
            .desc_col(d.desc_index("PctIlleg").unwrap())
            .as_numeric()
            .unwrap()
            .to_vec();
        let ext = BitSet::from_fn(d.n(), |i| pct[i] >= 0.39);
        let coverage = ext.count() as f64 / d.n() as f64;
        // Paper: 20.5% coverage, mean 0.53 in subgroup vs 0.24 overall.
        assert!(
            (0.12..0.30).contains(&coverage),
            "coverage {coverage} out of band"
        );
        let sub_mean = d.target_mean(&ext)[0];
        let all_mean = d.target_mean_all()[0];
        assert!(
            sub_mean > all_mean + 0.2,
            "subgroup mean {sub_mean} vs overall {all_mean}"
        );
        assert!((0.18..0.32).contains(&all_mean), "overall mean {all_mean}");
        assert!((0.42..0.65).contains(&sub_mean), "subgroup mean {sub_mean}");
    }

    #[test]
    fn noise_attributes_uncorrelated_with_target() {
        let d = crime_synthetic(4);
        let y = d.target_col(0);
        let ymean: f64 = y.iter().sum::<f64>() / y.len() as f64;
        let j = d.desc_index("noise_010").unwrap();
        let x = d.desc_col(j).as_numeric().unwrap();
        let xmean: f64 = x.iter().sum::<f64>() / x.len() as f64;
        let mut cov = 0.0;
        let mut vx = 0.0;
        let mut vy = 0.0;
        for i in 0..d.n() {
            cov += (x[i] - xmean) * (y[i] - ymean);
            vx += (x[i] - xmean).powi(2);
            vy += (y[i] - ymean).powi(2);
        }
        let corr = cov / (vx.sqrt() * vy.sqrt());
        assert!(corr.abs() < 0.08, "noise corr {corr}");
    }
}
