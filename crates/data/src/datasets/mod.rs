//! Seeded synthetic dataset generators.
//!
//! [`synthetic_paper`] reproduces §III-A of the paper exactly as specified.
//! The other three generators are *simulacra* of the paper's real datasets
//! (Communities & Crime, European Mammals, German socio-economics, Slovenian
//! river water quality), which cannot be shipped here; each reproduces the
//! size, attribute structure, and planted statistical story that the
//! corresponding experiment exercises. See DESIGN.md §1 for the substitution
//! rationale.

pub mod crime;
pub mod mammals;
pub mod socio;
pub mod synthetic;
pub mod water;

pub use crime::crime_synthetic;
pub use mammals::mammals_synthetic;
pub use socio::german_socio_synthetic;
pub use synthetic::{corrupt_descriptions, synthetic_paper, SyntheticGroundTruth};
pub use water::water_quality_synthetic;

use sisd_linalg::{Cholesky, Matrix};
use sisd_stats::Xoshiro256pp;

/// Draws one sample from `N(mean, cov)` given a precomputed Cholesky factor
/// of `cov`.
pub(crate) fn mvn_sample(rng: &mut Xoshiro256pp, mean: &[f64], chol: &Cholesky) -> Vec<f64> {
    let mut u = vec![0.0; mean.len()];
    rng.fill_normal(&mut u);
    let mut x = chol.mul_factor(&u);
    sisd_linalg::add_assign(&mut x, mean);
    x
}

/// Builds a 2-D covariance with eigenvalues `(major, minor)` and major axis
/// at `angle` radians.
pub(crate) fn cov2d(major: f64, minor: f64, angle: f64) -> Matrix {
    let (s, c) = angle.sin_cos();
    let v1 = [c, s];
    let v2 = [-s, c];
    let mut m = Matrix::zeros(2, 2);
    m.rank_one_update(major, &v1, &v1);
    m.rank_one_update(minor, &v2, &v2);
    m
}

/// Clamps into `[0, 1]` (rates and percentages).
pub(crate) fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sisd_stats::RunningStats;

    #[test]
    fn cov2d_spectrum() {
        let m = cov2d(4.0, 1.0, 0.7);
        let e = sisd_linalg::SymEigen::new(&m, 1e-12, 100);
        assert!((e.values[0] - 4.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Major axis points along `angle`.
        let v = e.vector(0);
        let expect = [0.7f64.cos(), 0.7f64.sin()];
        let align = (v[0] * expect[0] + v[1] * expect[1]).abs();
        assert!(align > 1.0 - 1e-8);
    }

    #[test]
    fn mvn_sample_moments() {
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let cov = cov2d(2.0, 0.5, 0.3);
        let chol = Cholesky::new(&cov).unwrap();
        let mean = vec![1.0, -1.0];
        let mut s0 = RunningStats::new();
        let mut s1 = RunningStats::new();
        for _ in 0..50_000 {
            let x = mvn_sample(&mut rng, &mean, &chol);
            s0.push(x[0]);
            s1.push(x[1]);
        }
        assert!((s0.mean() - 1.0).abs() < 0.03);
        assert!((s1.mean() + 1.0).abs() < 0.03);
        // Diagonal variances match the covariance.
        assert!((s0.variance() - cov[(0, 0)]).abs() < 0.05);
        assert!((s1.variance() - cov[(1, 1)]).abs() < 0.05);
    }

    #[test]
    fn clamp01_behaviour() {
        assert_eq!(clamp01(-0.5), 0.0);
        assert_eq!(clamp01(0.5), 0.5);
        assert_eq!(clamp01(1.5), 1.0);
    }
}
