//! Simulacrum of the German socio-economics dataset (Boley et al. 2013).
//!
//! The real data: 412 administrative districts, 13 description attributes
//! (age and workforce distribution) and 5 targets (2009 vote shares of
//! CDU/CSU, SPD, FDP, GREEN, LEFT). The generator plants the three stories
//! the paper's case study (§III-C, Figs. 7–8) tells:
//!
//! 1. *East Germany*: few children, Left strong at the expense of all other
//!    parties — the top location pattern "Children Pop. <= 14.1".
//! 2. *Large cities*: many middle-aged residents and service jobs, Greens
//!    strong at the expense of Left — the second pattern.
//! 3. Within the eastern subgroup, CDU and SPD vote shares anti-correlate
//!    far more strongly than country-wide (they "battle for the same
//!    voters"), so that the most interesting *spread* direction is
//!    `w ≈ (0.57, 0.82)` on (CDU, SPD) with much-smaller-than-expected
//!    variance.

use crate::column::Column;
use crate::table::Dataset;
use sisd_linalg::Matrix;
use sisd_stats::Xoshiro256pp;

/// Number of districts.
pub const N: usize = 412;
/// Number of description attributes (checked by tests via `Dataset::dx`).
pub const DX: usize = 13;
/// Number of targets (parties).
pub const DY: usize = 5;

/// Region labels for interpretation (not part of the mined attributes).
#[derive(Debug, Clone)]
pub struct SocioGroundTruth {
    /// True for districts planted as eastern.
    pub east: Vec<bool>,
    /// Urbanization score (large = big city).
    pub urbanization: Vec<f64>,
}

/// Generates the socio-economics simulacrum.
pub fn german_socio_synthetic(seed: u64) -> (Dataset, SocioGroundTruth) {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);

    // ~21% of districts are eastern (East Germany incl. Berlin).
    let east: Vec<bool> = (0..N).map(|_| rng.bernoulli(0.21)).collect();
    // Urbanization: heavy-tailed; a handful of big cities.
    let urbanization: Vec<f64> = (0..N)
        .map(|_| (rng.normal_with(0.0, 1.0)).exp() * 0.5)
        .collect();

    // --- Description attributes (age + workforce distribution) ---
    let mut children = Vec::with_capacity(N); // % under 15
    let mut young = Vec::with_capacity(N); // 15–30
    let mut middle = Vec::with_capacity(N); // 30–50
    let mut old = Vec::with_capacity(N); // 65+
    for i in 0..N {
        let e = east[i] as u8 as f64;
        let u = urbanization[i];
        // East has markedly fewer children and more elderly; cities have
        // more middle-aged and young (students/jobs).
        children.push(16.3 - 3.4 * e - 0.15 * u.min(3.0) + rng.normal_with(0.0, 0.55));
        young.push(16.5 + 1.2 * u.min(3.0) - 0.4 * e + rng.normal_with(0.0, 0.9));
        middle.push(25.3 + 1.8 * u.min(3.0) + 0.3 * e + rng.normal_with(0.0, 0.9));
        old.push(20.5 + 2.2 * e - 1.0 * u.min(3.0) + rng.normal_with(0.0, 1.0));
    }

    let mut agri = Vec::with_capacity(N);
    let mut industry = Vec::with_capacity(N);
    let mut service = Vec::with_capacity(N);
    let mut trade = Vec::with_capacity(N);
    let mut finance = Vec::with_capacity(N);
    let mut public = Vec::with_capacity(N);
    let mut selfemp = Vec::with_capacity(N);
    let mut unemployed = Vec::with_capacity(N);
    let mut jobs_density = Vec::with_capacity(N);
    for i in 0..N {
        let e = east[i] as u8 as f64;
        let u = urbanization[i];
        agri.push((3.5 - 1.1 * u.min(2.5) + 0.8 * e + rng.normal_with(0.0, 0.6)).max(0.1));
        industry.push(28.0 - 2.5 * u.min(3.0) - 1.5 * e + rng.normal_with(0.0, 2.0));
        service.push(35.0 + 4.5 * u.min(3.0) + rng.normal_with(0.0, 2.0));
        trade.push(14.0 + 0.8 * u.min(3.0) + rng.normal_with(0.0, 1.0));
        finance.push(3.0 + 1.6 * u.min(3.0) + rng.normal_with(0.0, 0.5));
        public.push(7.0 + 1.2 * e + rng.normal_with(0.0, 0.8));
        selfemp.push(9.5 + 0.5 * u.min(3.0) - 0.6 * e + rng.normal_with(0.0, 0.7));
        unemployed.push((6.5 + 3.2 * e - 0.3 * u.min(3.0) + rng.normal_with(0.0, 1.7)).max(1.0));
        jobs_density.push(450.0 + 260.0 * u.min(4.0) + rng.normal_with(0.0, 60.0));
    }

    // --- Targets: 2009 vote shares ---
    // Country-wide 2009 baseline (%): CDU 33.8, SPD 23.0, FDP 14.6,
    // GREEN 10.7, LEFT 11.9 — generate logits around these and renormalize.
    let mut targets = Matrix::zeros(N, DY);
    for i in 0..N {
        let e = east[i] as u8 as f64;
        let u = urbanization[i].min(3.0);
        // The CDU–SPD "battle" factor: common-voter swings. Eastern
        // districts get a much larger loading, planting the low-variance
        // direction w ∝ (0.57, 0.82): 0.57·a − 0.82·0.694·a ≈ 0.
        let b = rng.normal();
        let battle = if east[i] { 2.4 } else { 1.3 };
        let cdu_sway = battle * b;
        let spd_sway = -0.694 * battle * b;

        let mut shares = [
            34.0 - 11.0 * e - 1.5 * u + cdu_sway + rng.normal_with(0.0, 2.2 - 1.7 * e),
            23.5 - 9.5 * e - 0.3 * u + spd_sway + rng.normal_with(0.0, 2.2 - 1.7 * e),
            15.0 - 3.5 * e + 0.2 * u + rng.normal_with(0.0, 1.4),
            10.0 - 3.0 * e + 2.4 * u + rng.normal_with(0.0, 1.7),
            8.5 + 7.5 * e - 1.2 * u + rng.normal_with(0.0, 1.8 + 1.6 * e),
        ];
        // Clamp to positive and renormalize to 100%.
        for s in &mut shares {
            *s = s.max(0.5);
        }
        let total: f64 = shares.iter().sum();
        for (j, s) in shares.iter().enumerate() {
            targets[(i, j)] = 100.0 * s / total;
        }
    }

    let desc_names: Vec<String> = [
        "children_pop",
        "young_pop",
        "middle_aged_pop",
        "elder_pop",
        "wf_agriculture",
        "wf_industry",
        "wf_service",
        "wf_trade",
        "wf_finance",
        "wf_public",
        "wf_self_employed",
        "unemployment",
        "jobs_density",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let desc_cols = vec![
        Column::Numeric(children),
        Column::Numeric(young),
        Column::Numeric(middle),
        Column::Numeric(old),
        Column::Numeric(agri),
        Column::Numeric(industry),
        Column::Numeric(service),
        Column::Numeric(trade),
        Column::Numeric(finance),
        Column::Numeric(public),
        Column::Numeric(selfemp),
        Column::Numeric(unemployed),
        Column::Numeric(jobs_density),
    ];
    let target_names = [
        "CDU_2009",
        "SPD_2009",
        "FDP_2009",
        "GREEN_2009",
        "LEFT_2009",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let dataset = Dataset::new("german-socio", desc_names, desc_cols, target_names, targets);
    (dataset, SocioGroundTruth { east, urbanization })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitSet;

    #[test]
    fn shape_matches_paper() {
        let (d, _) = german_socio_synthetic(1);
        assert_eq!(d.n(), N);
        assert_eq!(d.dx(), DX);
        assert_eq!(d.dy(), DY);
    }

    #[test]
    fn vote_shares_sum_to_hundred() {
        let (d, _) = german_socio_synthetic(2);
        for i in 0..d.n() {
            let total: f64 = (0..5).map(|j| d.targets()[(i, j)]).sum();
            assert!((total - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn east_has_fewer_children_and_more_left() {
        let (d, truth) = german_socio_synthetic(3);
        let east_ext = BitSet::from_fn(d.n(), |i| truth.east[i]);
        let west_ext = east_ext.complement();
        assert!(east_ext.count() > 40);
        let cj = d.desc_index("children_pop").unwrap();
        let children = d.desc_col(cj).as_numeric().unwrap();
        let east_children: f64 =
            east_ext.iter().map(|i| children[i]).sum::<f64>() / east_ext.count() as f64;
        let west_children: f64 =
            west_ext.iter().map(|i| children[i]).sum::<f64>() / west_ext.count() as f64;
        assert!(east_children < west_children - 1.5);
        // LEFT (index 4) much stronger in the east.
        let left_east = d.target_mean(&east_ext)[4];
        let left_west = d.target_mean(&west_ext)[4];
        assert!(left_east > left_west + 8.0, "{left_east} vs {left_west}");
    }

    #[test]
    fn planted_low_variance_direction_in_east() {
        let (d, truth) = german_socio_synthetic(4);
        let east_ext = BitSet::from_fn(d.n(), |i| truth.east[i]);
        // Variance along w = (0.5704, 0.8214) on (CDU, SPD), normalized,
        // must be far below the variance along the orthogonal direction.
        let w_full = [0.5704, 0.8214, 0.0, 0.0, 0.0];
        let mut w = w_full.to_vec();
        sisd_linalg::normalize(&mut w);
        let v_w = d.target_variance_along(&east_ext, &w);
        let mut orth = vec![0.8214, -0.5704, 0.0, 0.0, 0.0];
        sisd_linalg::normalize(&mut orth);
        let v_orth = d.target_variance_along(&east_ext, &orth);
        assert!(
            v_w * 4.0 < v_orth,
            "planted direction not low-variance: {v_w} vs {v_orth}"
        );
    }

    #[test]
    fn cities_are_greener() {
        let (d, truth) = german_socio_synthetic(5);
        let city = BitSet::from_fn(d.n(), |i| truth.urbanization[i] > 1.5);
        assert!(city.count() > 10);
        let green_city = d.target_mean(&city)[3];
        let green_all = d.target_mean_all()[3];
        assert!(green_city > green_all + 2.0);
    }

    #[test]
    fn deterministic() {
        let (a, _) = german_socio_synthetic(9);
        let (b, _) = german_socio_synthetic(9);
        assert_eq!(a.targets().as_slice(), b.targets().as_slice());
    }
}
