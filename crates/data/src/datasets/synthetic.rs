//! The paper's synthetic dataset (§III-A), generated to specification.
//!
//! 620 data points with two real-valued targets and five binary description
//! attributes: 500 background points from `N(0, I₂)` plus three embedded
//! subgroups of 40 points each, at distance 2 from the origin, each with an
//! anisotropic covariance (variance along the main eigenvector much larger
//! than the other). Description attributes 3–5 carry the true subgroup
//! labels, attributes 6–7 are Bernoulli(½) noise.

use super::{cov2d, mvn_sample};
use crate::column::Column;
use crate::table::Dataset;
use crate::BitSet;
use sisd_linalg::{Cholesky, Matrix};
use sisd_stats::Xoshiro256pp;

/// Ground truth of the synthetic generator, used by the noise-robustness
/// experiment (Fig. 3) and by tests.
#[derive(Debug, Clone)]
pub struct SyntheticGroundTruth {
    /// Extensions of the three embedded subgroups (rows 500–539, 540–579,
    /// 580–619).
    pub cluster_extensions: Vec<BitSet>,
    /// Cluster centers in target space.
    pub centers: Vec<[f64; 2]>,
    /// Major-axis angle (radians) of each cluster's covariance.
    pub angles: Vec<f64>,
}

/// Number of background points.
pub const N_BACKGROUND: usize = 500;
/// Number of points per embedded cluster.
pub const CLUSTER_SIZE: usize = 40;
/// Number of embedded clusters.
pub const N_CLUSTERS: usize = 3;
/// Total rows.
pub const N_TOTAL: usize = N_BACKGROUND + N_CLUSTERS * CLUSTER_SIZE;

/// Generates the §III-A synthetic dataset.
///
/// Returns the dataset together with its ground truth. Attribute names
/// follow the paper's indexing: the targets are "attribute 1/2", the
/// descriptors `a3`–`a7`.
pub fn synthetic_paper(seed: u64) -> (Dataset, SyntheticGroundTruth) {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let n = N_TOTAL;
    let mut targets = Matrix::zeros(n, 2);

    // 500 background points ~ N(0, I).
    let eye = Cholesky::new(&Matrix::identity(2)).expect("identity is SPD");
    for i in 0..N_BACKGROUND {
        let x = mvn_sample(&mut rng, &[0.0, 0.0], &eye);
        targets[(i, 0)] = x[0];
        targets[(i, 1)] = x[1];
    }

    // Three clusters at distance 2 from the origin, at evenly spread
    // angles, each elongated along a distinct major axis.
    let center_angles = [
        std::f64::consts::FRAC_PI_2, // up
        std::f64::consts::FRAC_PI_2 + 2.0 * std::f64::consts::FRAC_PI_3 * 2.0, // lower right
        std::f64::consts::FRAC_PI_2 + 2.0 * std::f64::consts::FRAC_PI_3, // lower left
    ];
    let major_axis_angles = [0.0, 1.1, 2.2];
    let mut centers = Vec::with_capacity(N_CLUSTERS);
    let mut extensions = Vec::with_capacity(N_CLUSTERS);
    for (k, (&ca, &ma)) in center_angles.iter().zip(&major_axis_angles).enumerate() {
        let center = [2.0 * ca.cos(), 2.0 * ca.sin()];
        centers.push([center[0], center[1]]);
        // Variance along the main eigenvector much larger than the other.
        let cov = cov2d(0.5, 0.02, ma);
        let chol = Cholesky::new(&cov).expect("cluster covariance is SPD");
        let start = N_BACKGROUND + k * CLUSTER_SIZE;
        for i in start..start + CLUSTER_SIZE {
            let x = mvn_sample(&mut rng, &center, &chol);
            targets[(i, 0)] = x[0];
            targets[(i, 1)] = x[1];
        }
        extensions.push(BitSet::from_indices(n, start..start + CLUSTER_SIZE));
    }

    // Descriptors: a3–a5 true labels, a6–a7 Bernoulli(1/2) noise.
    let mut desc_names = Vec::new();
    let mut desc_cols = Vec::new();
    for (k, ext) in extensions.iter().enumerate() {
        let values: Vec<bool> = (0..n).map(|i| ext.contains(i)).collect();
        desc_names.push(format!("a{}", k + 3));
        desc_cols.push(Column::binary(&values));
    }
    for k in 0..2 {
        let values: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.5)).collect();
        desc_names.push(format!("a{}", k + 6));
        desc_cols.push(Column::binary(&values));
    }

    let dataset = Dataset::new(
        "synthetic",
        desc_names,
        desc_cols,
        vec!["attribute1".into(), "attribute2".into()],
        targets,
    );
    let truth = SyntheticGroundTruth {
        cluster_extensions: extensions,
        centers,
        angles: major_axis_angles.to_vec(),
    };
    (dataset, truth)
}

/// Returns a copy of `dataset` where every *binary categorical* description
/// value is flipped independently with probability `p` (the corruption
/// process of the Fig. 3 noise-robustness experiment).
///
/// Non-binary columns are copied untouched.
pub fn corrupt_descriptions(dataset: &Dataset, p: f64, seed: u64) -> Dataset {
    assert!((0.0..=1.0).contains(&p), "corrupt: p must be in [0,1]");
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let cols = dataset
        .desc_cols()
        .iter()
        .map(|col| match col {
            Column::Categorical { codes, labels } if labels.len() == 2 => {
                let flipped: Vec<u32> = codes
                    .iter()
                    .map(|&c| if rng.bernoulli(p) { 1 - c } else { c })
                    .collect();
                Column::Categorical {
                    codes: flipped,
                    labels: labels.clone(),
                }
            }
            other => other.clone(),
        })
        .collect();
    Dataset::new(
        format!("{}-corrupt{p}", dataset.name),
        dataset.desc_names().to_vec(),
        cols,
        dataset.target_names().to_vec(),
        dataset.targets().clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_the_paper() {
        let (d, truth) = synthetic_paper(1);
        assert_eq!(d.n(), 620);
        assert_eq!(d.dx(), 5);
        assert_eq!(d.dy(), 2);
        assert_eq!(truth.cluster_extensions.len(), 3);
        for ext in &truth.cluster_extensions {
            assert_eq!(ext.count(), 40);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = synthetic_paper(7);
        let (b, _) = synthetic_paper(7);
        assert_eq!(a.targets().as_slice(), b.targets().as_slice());
        let (c, _) = synthetic_paper(8);
        assert_ne!(a.targets().as_slice(), c.targets().as_slice());
    }

    #[test]
    fn clusters_sit_at_distance_two() {
        let (d, truth) = synthetic_paper(3);
        for (ext, center) in truth.cluster_extensions.iter().zip(&truth.centers) {
            let mean = d.target_mean(ext);
            let dist = (center[0] * center[0] + center[1] * center[1]).sqrt();
            assert!((dist - 2.0).abs() < 1e-12);
            // Empirical mean close to the intended center.
            let err = ((mean[0] - center[0]).powi(2) + (mean[1] - center[1]).powi(2)).sqrt();
            assert!(err < 0.35, "cluster mean off by {err}");
        }
    }

    #[test]
    fn clusters_are_anisotropic() {
        let (d, truth) = synthetic_paper(5);
        for ext in &truth.cluster_extensions {
            let cov = d.target_covariance(ext);
            let e = sisd_linalg::SymEigen::new(&cov, 1e-12, 100);
            assert!(
                e.values[0] > 5.0 * e.values[1],
                "eigenvalues {:?} not anisotropic",
                e.values
            );
        }
    }

    #[test]
    fn labels_describe_clusters_exactly() {
        let (d, truth) = synthetic_paper(11);
        for (k, ext) in truth.cluster_extensions.iter().enumerate() {
            let (codes, _) = d.desc_col(k).as_categorical().unwrap();
            #[allow(clippy::needless_range_loop)]
            for i in 0..d.n() {
                assert_eq!(codes[i] == 1, ext.contains(i));
            }
        }
    }

    #[test]
    fn noise_attributes_are_roughly_balanced() {
        let (d, _) = synthetic_paper(13);
        for j in 3..5 {
            let (codes, _) = d.desc_col(j).as_categorical().unwrap();
            let ones = codes.iter().filter(|&&c| c == 1).count();
            assert!((ones as f64 / 620.0 - 0.5).abs() < 0.08);
        }
    }

    #[test]
    fn corruption_flips_expected_fraction() {
        let (d, _) = synthetic_paper(17);
        let c = corrupt_descriptions(&d, 0.25, 99);
        let mut flips = 0;
        let mut total = 0;
        for j in 0..d.dx() {
            let (a, _) = d.desc_col(j).as_categorical().unwrap();
            let (b, _) = c.desc_col(j).as_categorical().unwrap();
            flips += a.iter().zip(b).filter(|(x, y)| x != y).count();
            total += a.len();
        }
        let rate = flips as f64 / total as f64;
        assert!((rate - 0.25).abs() < 0.03, "flip rate {rate}");
        // Targets untouched.
        assert_eq!(c.targets().as_slice(), d.targets().as_slice());
    }

    #[test]
    fn corruption_zero_is_identity() {
        let (d, _) = synthetic_paper(19);
        let c = corrupt_descriptions(&d, 0.0, 1);
        for j in 0..d.dx() {
            assert_eq!(d.desc_col(j), c.desc_col(j));
        }
    }
}
