//! Numeric-attribute discretization.
//!
//! The beam search's condition language handles numeric attributes through
//! percentile split points directly, but Cortana-style workflows (and the
//! paper's ordinal bioindicators) often want an explicit *conversion* of a
//! numeric column into a categorical one — equal-frequency or equal-width
//! bins — e.g. to feed attributes with heavy ties into the `=`-condition
//! language, or to coarsen a column before sharing a dataset.

use crate::column::Column;
use crate::table::Dataset;
use sisd_stats::quantile::quantile;

/// Binning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Binning {
    /// Bins with (approximately) equal row counts (quantile cuts).
    EqualFrequency,
    /// Bins of equal value width between min and max.
    EqualWidth,
}

/// Discretizes a numeric slice into `bins` labelled intervals.
///
/// Returns a categorical [`Column`] whose labels render the interval
/// boundaries (`[lo, hi)` style). Degenerate inputs (constant columns,
/// duplicate cut points) collapse into fewer bins.
pub fn discretize(values: &[f64], bins: usize, strategy: Binning) -> Column {
    assert!(bins >= 2, "discretize: need at least 2 bins");
    assert!(!values.is_empty(), "discretize: empty column");
    let (min, max) = values
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));

    // Interior cut points, deduplicated and strictly inside (min, max).
    let mut cuts: Vec<f64> = Vec::with_capacity(bins - 1);
    for k in 1..bins {
        let cut = match strategy {
            Binning::EqualFrequency => quantile(values, k as f64 / bins as f64),
            Binning::EqualWidth => min + (max - min) * k as f64 / bins as f64,
        };
        if cut > min && cut < max && cuts.last().is_none_or(|&last| cut > last) {
            cuts.push(cut);
        }
    }

    let labels: Vec<String> = {
        let mut out = Vec::with_capacity(cuts.len() + 1);
        let mut lo = min;
        for &c in &cuts {
            out.push(format!("[{lo:.4}, {c:.4})"));
            lo = c;
        }
        out.push(format!("[{lo:.4}, {max:.4}]"));
        out
    };
    let codes: Vec<u32> = values
        .iter()
        .map(|&v| cuts.partition_point(|&c| c <= v) as u32)
        .collect();
    Column::Categorical { codes, labels }
}

/// Returns a copy of the dataset with the given numeric description
/// attribute replaced by its discretization.
///
/// # Panics
/// Panics if `attr` is out of range or not numeric.
pub fn discretize_attribute(
    data: &Dataset,
    attr: usize,
    bins: usize,
    strategy: Binning,
) -> Dataset {
    let values = data
        .desc_col(attr)
        .as_numeric()
        .expect("discretize_attribute: attribute must be numeric");
    let new_col = discretize(values, bins, strategy);
    let cols: Vec<Column> = data
        .desc_cols()
        .iter()
        .enumerate()
        .map(|(j, c)| {
            if j == attr {
                new_col.clone()
            } else {
                c.clone()
            }
        })
        .collect();
    Dataset::new(
        data.name.clone(),
        data.desc_names().to_vec(),
        cols,
        data.target_names().to_vec(),
        data.targets().clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_frequency_balances_counts() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let col = discretize(&values, 4, Binning::EqualFrequency);
        let (codes, labels) = col.as_categorical().unwrap();
        assert_eq!(labels.len(), 4);
        let mut counts = [0usize; 4];
        for &c in codes {
            counts[c as usize] += 1;
        }
        for &c in &counts {
            assert!((23..=27).contains(&c), "imbalanced bins: {counts:?}");
        }
    }

    #[test]
    fn equal_width_has_even_boundaries() {
        let values: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        let col = discretize(&values, 2, Binning::EqualWidth);
        let (codes, labels) = col.as_categorical().unwrap();
        assert_eq!(labels.len(), 2);
        // Cut at 5.0: values < 5 in bin 0, ≥ 5 in bin 1.
        assert_eq!(codes[4], 0);
        assert_eq!(codes[5], 1);
        assert!(labels[0].starts_with("[0.0000"));
    }

    #[test]
    fn heavy_ties_collapse_bins() {
        // Ordinal levels 0/0/.../3/5: quantile cuts coincide → fewer bins.
        let mut values = vec![0.0; 90];
        values.extend([3.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0]);
        let col = discretize(&values, 5, Binning::EqualFrequency);
        let (_, labels) = col.as_categorical().unwrap();
        assert!(labels.len() < 5, "got {} bins", labels.len());
        assert!(!labels.is_empty());
    }

    #[test]
    fn constant_column_yields_single_bin() {
        let col = discretize(&[7.0; 20], 4, Binning::EqualWidth);
        let (codes, labels) = col.as_categorical().unwrap();
        assert_eq!(labels.len(), 1);
        assert!(codes.iter().all(|&c| c == 0));
    }

    #[test]
    fn dataset_level_replacement() {
        use sisd_linalg::Matrix;
        let data = Dataset::new(
            "d",
            vec!["x".into(), "y".into()],
            vec![
                Column::Numeric((0..50).map(|i| i as f64).collect()),
                Column::Numeric(vec![1.0; 50]),
            ],
            vec!["t".into()],
            Matrix::zeros(50, 1),
        );
        let out = discretize_attribute(&data, 0, 5, Binning::EqualFrequency);
        assert!(!out.desc_col(0).is_numeric());
        assert!(out.desc_col(1).is_numeric());
        assert_eq!(out.desc_col(0).cardinality(), 5);
        // Mining still works on the discretized data.
        use crate::BitSet;
        let ext = BitSet::from_fn(out.n(), |i| {
            let (codes, _) = out.desc_col(0).as_categorical().unwrap();
            codes[i] == 0
        });
        assert_eq!(ext.count(), 10);
    }

    #[test]
    #[should_panic(expected = "at least 2 bins")]
    fn one_bin_rejected() {
        discretize(&[1.0, 2.0], 1, Binning::EqualWidth);
    }
}
