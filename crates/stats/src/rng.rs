//! Deterministic pseudo-random number generation.
//!
//! xoshiro256++ (Blackman & Vigna, 2019): 256 bits of state, jump-free
//! splitting via `SplitMix64` seeding, excellent statistical quality, and —
//! crucially for a reproduction repository — identical streams on every
//! platform. Gaussian variates use the polar (Marsaglia) method with a
//! cached spare, Bernoulli/categorical/shuffle helpers round out what the
//! synthetic dataset generators need.

/// xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
    /// Cached second Gaussian from the polar method.
    spare_normal: Option<f64>,
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

/// SplitMix64 step, used for seeding.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Xoshiro256pp {
    /// Creates a generator from a 64-bit seed, expanding it through
    /// SplitMix64 as the xoshiro authors recommend.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self {
            s,
            spare_normal: None,
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` via Lemire's method (unbiased).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below: n must be positive");
        let n = n as u64;
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal variate (polar method, spare cached).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare_normal = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Normal variate with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.normal()
    }

    /// Fills `out` with iid standard normals.
    pub fn fill_normal(&mut self, out: &mut [f64]) {
        for o in out {
            *o = self.normal();
        }
    }

    /// Draws an index from the categorical distribution given by `weights`
    /// (not necessarily normalized; all weights must be non-negative and at
    /// least one positive).
    pub fn categorical(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "categorical: weights must sum to a positive finite value"
        );
        let mut u = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            u -= w;
            if u < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (partial Fisher–Yates).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices: k > n");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = Xoshiro256pp::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut r = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = Xoshiro256pp::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Xoshiro256pp::seed_from_u64(11);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }

    #[test]
    fn below_covers_range_without_bias() {
        let mut r = Xoshiro256pp::seed_from_u64(5);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[r.below(5)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts={counts:?}");
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = Xoshiro256pp::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.bernoulli(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn categorical_respects_weights() {
        let mut r = Xoshiro256pp::seed_from_u64(13);
        let w = [1.0, 3.0];
        let ones = (0..100_000).filter(|_| r.categorical(&w) == 1).count();
        assert!((ones as f64 / 100_000.0 - 0.75).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256pp::seed_from_u64(17);
        let mut xs: Vec<usize> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = Xoshiro256pp::seed_from_u64(19);
        let s = r.sample_indices(50, 10);
        assert_eq!(s.len(), 10);
        let mut uniq = s.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 10);
        assert!(s.iter().all(|&i| i < 50));
    }
}
