//! Zhang (2005) three-moment approximation of χ²-type mixtures.
//!
//! The variance statistic of a spread pattern is a positive linear
//! combination of independent χ²₁ variables (paper Eq. 17):
//!
//! ```text
//! g = Σᵢ aᵢ cᵢ,   cᵢ ~ χ²₁ iid,  aᵢ = w′Σᵢw / |I| ≥ 0.
//! ```
//!
//! No closed form exists for the density of `g`; Zhang's approximation
//! matches the first three cumulants with an affine image of a χ²
//! variable, `g ≈ α χ²_m + β`, using (paper Eq. 18):
//!
//! ```text
//! α = Σa³ / Σa²,   β = Σa − (Σa²)² / Σa³,   m = (Σa²)³ / (Σa³)².
//! ```
//!
//! The information content of a spread pattern is then `−log p(ĝ)` under
//! this approximation (paper Eq. 19, with the printed `+α` corrected to the
//! `+log α` Jacobian term of the affine map — see DESIGN.md).

use crate::chi2::ChiSquared;

/// Moment-matched approximation `g ≈ α χ²_m + β` of `Σ aᵢ χ²₁`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chi2MixtureApprox {
    /// Scale of the χ² component.
    pub alpha: f64,
    /// Location shift.
    pub beta: f64,
    /// Real-valued degrees of freedom.
    pub m: f64,
}

impl Chi2MixtureApprox {
    /// Builds the approximation from mixture coefficients.
    ///
    /// Coefficients must be non-negative with at least one strictly
    /// positive entry; zero coefficients are skipped (they contribute
    /// nothing to any moment).
    pub fn from_coefficients(coeffs: impl IntoIterator<Item = f64>) -> Self {
        let (mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0);
        for a in coeffs {
            debug_assert!(a >= -1e-15, "mixture coefficient must be non-negative");
            let a = a.max(0.0);
            s1 += a;
            s2 += a * a;
            s3 += a * a * a;
        }
        Self::from_power_sums(s1, s2, s3)
    }

    /// Builds the approximation from pre-accumulated power sums
    /// `s1 = Σa`, `s2 = Σa²`, `s3 = Σa³`. This is the hot path for the
    /// model layer, which accumulates per-cell contributions
    /// `n_g · (w′Σ_g w/|I|)^p` without materializing per-point vectors.
    pub fn from_power_sums(s1: f64, s2: f64, s3: f64) -> Self {
        assert!(
            s1 > 0.0 && s2 > 0.0 && s3 > 0.0,
            "chi2 mixture needs at least one positive coefficient"
        );
        let alpha = s3 / s2;
        let beta = s1 - s2 * s2 / s3;
        let m = s2 * s2 * s2 / (s3 * s3);
        Self { alpha, beta, m }
    }

    /// Mean of the approximating distribution (= Σa, exactly the mixture
    /// mean by construction).
    pub fn mean(&self) -> f64 {
        self.alpha * self.m + self.beta
    }

    /// Variance (= 2Σa², exactly the mixture variance by construction).
    pub fn variance(&self) -> f64 {
        2.0 * self.alpha * self.alpha * self.m
    }

    /// Log-density of the approximation at `g`.
    ///
    /// Returns −∞ outside the support `g > β`.
    pub fn ln_pdf(&self, g: f64) -> f64 {
        let x = (g - self.beta) / self.alpha;
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        ChiSquared::new(self.m).ln_pdf(x) - self.alpha.ln()
    }

    /// CDF of the approximation at `g`.
    pub fn cdf(&self, g: f64) -> f64 {
        let x = (g - self.beta) / self.alpha;
        ChiSquared::new(self.m).cdf(x)
    }

    /// Negative log-density, i.e. the information content of observing `g`
    /// (paper Eq. 19). Clamps into the support when `g` falls at most a
    /// relative `1e-9` below β (numerically equal-coefficient mixtures have
    /// β exactly at the support edge).
    pub fn information_content(&self, g: f64) -> f64 {
        let edge = self.beta + self.alpha * 1e-12;
        let g = if g <= edge { edge } else { g };
        -self.ln_pdf(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    #[test]
    fn equal_coefficients_recover_plain_chi2() {
        // Σ_{i=1..k} a·χ²₁ = a·χ²_k exactly; Zhang must reproduce it.
        let k = 7;
        let a = 0.5;
        let approx = Chi2MixtureApprox::from_coefficients(std::iter::repeat_n(a, k));
        assert!((approx.alpha - a).abs() < 1e-12);
        assert!(approx.beta.abs() < 1e-12);
        assert!((approx.m - k as f64).abs() < 1e-12);
    }

    #[test]
    fn moments_match_mixture_exactly() {
        let coeffs = [0.2, 1.5, 0.9, 3.0, 0.01];
        let approx = Chi2MixtureApprox::from_coefficients(coeffs.iter().copied());
        let mean: f64 = coeffs.iter().sum();
        let var: f64 = 2.0 * coeffs.iter().map(|a| a * a).sum::<f64>();
        assert!((approx.mean() - mean).abs() < 1e-12);
        assert!((approx.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn power_sum_and_coefficient_paths_agree() {
        let coeffs = [0.3, 0.3, 0.7, 1.1];
        let a = Chi2MixtureApprox::from_coefficients(coeffs.iter().copied());
        let s1: f64 = coeffs.iter().sum();
        let s2: f64 = coeffs.iter().map(|c| c * c).sum();
        let s3: f64 = coeffs.iter().map(|c| c * c * c).sum();
        let b = Chi2MixtureApprox::from_power_sums(s1, s2, s3);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_coefficients_are_ignored() {
        let a = Chi2MixtureApprox::from_coefficients([1.0, 0.0, 2.0, 0.0]);
        let b = Chi2MixtureApprox::from_coefficients([1.0, 2.0]);
        assert!((a.m - b.m).abs() < 1e-12);
        assert!((a.alpha - b.alpha).abs() < 1e-12);
        assert!((a.beta - b.beta).abs() < 1e-12);
    }

    #[test]
    fn cdf_against_monte_carlo() {
        // Draw the true mixture and compare empirical CDF with Zhang's.
        let coeffs = [1.0, 0.5, 0.25, 2.0];
        let approx = Chi2MixtureApprox::from_coefficients(coeffs.iter().copied());
        let mut rng = Xoshiro256pp::seed_from_u64(1234);
        let n = 200_000;
        let mut samples: Vec<f64> = (0..n)
            .map(|_| {
                coeffs
                    .iter()
                    .map(|&a| {
                        let z = rng.normal();
                        a * z * z
                    })
                    .sum()
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Zhang's approximation matches three moments; it is tight in the
        // body and upper tail but its support starts at β > 0, so the lower
        // tail is only qualitatively right — mirror that in the tolerances.
        for &(q, tol) in &[
            (0.1, 0.06),
            (0.25, 0.03),
            (0.5, 0.02),
            (0.75, 0.02),
            (0.9, 0.02),
            (0.99, 0.01),
        ] {
            let emp = samples[(q * n as f64) as usize];
            let approx_p = approx.cdf(emp);
            assert!(
                (approx_p - q).abs() < tol,
                "quantile {q}: Zhang CDF gives {approx_p}"
            );
        }
    }

    #[test]
    fn information_content_is_finite_at_the_mean() {
        let approx = Chi2MixtureApprox::from_coefficients([0.4, 0.4, 0.8]);
        let ic = approx.information_content(approx.mean());
        assert!(ic.is_finite());
        // Surprising observations carry more information than the mean.
        assert!(approx.information_content(approx.mean() * 6.0) > ic);
    }

    #[test]
    fn information_content_clamps_at_support_edge() {
        let approx = Chi2MixtureApprox::from_coefficients([1.0, 1.0, 1.0]);
        // β = 0 here; a tiny negative observation must not produce NaN/∞.
        let ic = approx.information_content(-1e-13);
        assert!(ic.is_finite());
    }

    #[test]
    #[should_panic(expected = "positive coefficient")]
    fn all_zero_coefficients_rejected() {
        Chi2MixtureApprox::from_coefficients([0.0, 0.0]);
    }
}
