//! Gaussian kernel density estimation.
//!
//! Fig. 1 of the paper shows "Gaussian-kernel smoothed estimates" of the
//! violent-crime distribution for the full data, the part covered by the
//! subgroup, and the subgroup-internal distribution. This module provides
//! the 1-D weighted KDE used by the `fig1_crime` harness to print those
//! three curves.

/// A 1-D Gaussian kernel density estimator over a fixed sample.
#[derive(Debug, Clone)]
pub struct GaussianKde {
    xs: Vec<f64>,
    weights: Vec<f64>,
    bandwidth: f64,
    /// Total weight; densities are normalized by this so that a *subset*
    /// KDE can be drawn on the same scale as the full data (the red area of
    /// Fig. 1 keeps full-data normalization).
    total_weight: f64,
}

impl GaussianKde {
    /// Unweighted KDE with Silverman's rule-of-thumb bandwidth.
    pub fn new(xs: &[f64]) -> Self {
        Self::weighted(xs, &vec![1.0; xs.len()])
    }

    /// Weighted KDE with Silverman bandwidth computed from the weighted
    /// standard deviation. Weights must be non-negative, not all zero.
    pub fn weighted(xs: &[f64], weights: &[f64]) -> Self {
        assert_eq!(xs.len(), weights.len(), "KDE: weight length mismatch");
        assert!(!xs.is_empty(), "KDE: empty sample");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "KDE: weights must have positive total");
        let mean: f64 = xs.iter().zip(weights).map(|(x, w)| x * w).sum::<f64>() / total;
        let var: f64 = xs
            .iter()
            .zip(weights)
            .map(|(x, w)| w * (x - mean) * (x - mean))
            .sum::<f64>()
            / total;
        let sd = var.sqrt().max(1e-12);
        // Effective sample size for the weighted Silverman rule.
        let w2: f64 = weights.iter().map(|w| w * w).sum();
        let n_eff = (total * total / w2).max(2.0);
        let bandwidth = 1.06 * sd * n_eff.powf(-0.2);
        Self {
            xs: xs.to_vec(),
            weights: weights.to_vec(),
            bandwidth,
            total_weight: total,
        }
    }

    /// Overrides the bandwidth (must be positive).
    pub fn with_bandwidth(mut self, h: f64) -> Self {
        assert!(h > 0.0, "KDE: bandwidth must be positive");
        self.bandwidth = h;
        self
    }

    /// Overrides the normalization mass. Passing the *full data* total
    /// weight while keeping only subgroup weights yields the "part covered
    /// by subgroup" curve of Fig. 1 (it integrates to the coverage
    /// fraction, not to 1).
    pub fn with_normalization(mut self, total: f64) -> Self {
        assert!(total > 0.0, "KDE: normalization must be positive");
        self.total_weight = total;
        self
    }

    /// Bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Density estimate at `x`.
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = self.total_weight * h * (2.0 * std::f64::consts::PI).sqrt();
        let mut acc = 0.0;
        for (&xi, &w) in self.xs.iter().zip(&self.weights) {
            let z = (x - xi) / h;
            acc += w * (-0.5 * z * z).exp();
        }
        acc / norm
    }

    /// Densities on an equally spaced grid of `steps + 1` points over
    /// `[lo, hi]`, returned as `(grid, densities)`.
    pub fn grid(&self, lo: f64, hi: f64, steps: usize) -> (Vec<f64>, Vec<f64>) {
        assert!(steps >= 1 && hi > lo, "KDE: bad grid spec");
        let mut grid = Vec::with_capacity(steps + 1);
        let mut dens = Vec::with_capacity(steps + 1);
        for i in 0..=steps {
            let x = lo + (hi - lo) * i as f64 / steps as f64;
            grid.push(x);
            dens.push(self.density(x));
        }
        (grid, dens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    #[test]
    fn density_integrates_to_one() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let xs: Vec<f64> = (0..500).map(|_| rng.normal()).collect();
        let kde = GaussianKde::new(&xs);
        let (grid, dens) = kde.grid(-8.0, 8.0, 4000);
        let h = grid[1] - grid[0];
        let integral: f64 = dens.iter().sum::<f64>() * h;
        assert!((integral - 1.0).abs() < 0.01, "∫ = {integral}");
    }

    #[test]
    fn subset_normalized_by_full_mass_integrates_to_coverage() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let xs: Vec<f64> = (0..1000).map(|_| rng.normal()).collect();
        // Subgroup = 30% of the points.
        let sub: Vec<f64> = xs.iter().copied().take(300).collect();
        let kde = GaussianKde::new(&sub).with_normalization(1000.0);
        let (grid, dens) = kde.grid(-8.0, 8.0, 4000);
        let h = grid[1] - grid[0];
        let integral: f64 = dens.iter().sum::<f64>() * h;
        assert!((integral - 0.3).abs() < 0.01, "∫ = {integral}");
    }

    #[test]
    fn density_peaks_near_sample_mean() {
        let xs = vec![4.9, 5.0, 5.1, 5.05, 4.95];
        let kde = GaussianKde::new(&xs);
        assert!(kde.density(5.0) > kde.density(4.0));
        assert!(kde.density(5.0) > kde.density(6.0));
    }

    #[test]
    fn bandwidth_override() {
        let xs = vec![0.0, 1.0];
        let kde = GaussianKde::new(&xs).with_bandwidth(0.1);
        assert_eq!(kde.bandwidth(), 0.1);
        // With a tiny bandwidth the two modes separate.
        assert!(kde.density(0.0) > kde.density(0.5) * 10.0);
    }

    #[test]
    fn weights_shift_mass() {
        let xs = vec![0.0, 10.0];
        let kde = GaussianKde::weighted(&xs, &[9.0, 1.0]).with_bandwidth(1.0);
        assert!(kde.density(0.0) > 5.0 * kde.density(10.0));
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_rejected() {
        GaussianKde::new(&[]);
    }
}
