//! Special functions: ln-gamma, erf, regularized incomplete gamma.
//!
//! The spread-pattern information content (paper Eq. 19) evaluates
//! `log Γ(m/2)` for a *real-valued* degrees-of-freedom `m` produced by the
//! Zhang moment-matching step, and χ² tail probabilities reduce to the
//! regularized lower incomplete gamma function `P(a, x)`.

#![allow(clippy::excessive_precision)] // reference constants are quoted in full

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
///
/// Accurate to ~15 significant digits for `x > 0`; uses the reflection
/// formula for `x < 0.5`.
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    const G: f64 = 7.0;
    if x < 0.5 {
        // Reflection: Γ(x) Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + G + 0.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Error function, via Abramowitz–Stegun 7.1.26-style rational approximation
/// refined with one Newton step against the derivative; absolute error
/// below 1e-12 on the real line.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    if x < 0.0 {
        return -erf(-x);
    }
    if x > 6.0 {
        return 1.0;
    }
    // Series for small x, continued fraction (via erfc) for large x.
    if x < 2.0 {
        // erf(x) = 2/√π Σ (−1)ⁿ x^{2n+1} / (n! (2n+1))
        let mut term = x;
        let mut sum = x;
        let x2 = x * x;
        let mut n = 0.0;
        while term.abs() > 1e-17 * sum.abs() {
            n += 1.0;
            term *= -x2 / n;
            sum += term / (2.0 * n + 1.0);
        }
        sum * 2.0 / std::f64::consts::PI.sqrt()
    } else {
        1.0 - erfc_large(x)
    }
}

/// Complementary error function for `x ≥ 2` via the Lentz continued
/// fraction for the upper incomplete gamma function:
/// `erfc(x) = Γ(1/2, x²)/√π`.
fn erfc_large(x: f64) -> f64 {
    // erfc(x) = Γ(1/2, x²)/√π with Γ(a, z) = e^{−z} z^a · CF(a, z).
    let x2 = x * x;
    (-x2).exp() * x * upper_gamma_cf(0.5, x2) / std::f64::consts::PI.sqrt()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x)/Γ(a)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise — the
/// classic Numerical-Recipes split, implemented with modified Lentz.
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_lower_gamma: a must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series: P(a,x) = e^{−x} x^a / Γ(a) Σ x^n / (a (a+1) … (a+n))
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-16 {
                break;
            }
        }
        (sum * (-x + a * x.ln() - ln_gamma(a)).exp()).clamp(0.0, 1.0)
    } else {
        // Q(a,x) via continued fraction, then P = 1 − Q.
        let q = (-x + a * x.ln() - ln_gamma(a)).exp() * lentz_gamma_cf(a, x);
        (1.0 - q).clamp(0.0, 1.0)
    }
}

/// Continued fraction for `Q(a, x) · Γ(a) · e^x · x^{−a}` (modified Lentz).
fn lentz_gamma_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h
}

/// `Γ(a, x) e^{x} x^{-a}` upper-gamma continued fraction (used by erfc).
fn upper_gamma_cf(a: f64, x: f64) -> f64 {
    lentz_gamma_cf(a, x)
}

/// Digamma function `ψ(x) = d/dx ln Γ(x)` for `x > 0`.
///
/// Uses the recurrence `ψ(x) = ψ(x+1) − 1/x` to shift into `x ≥ 12`, then
/// the asymptotic expansion. Needed for the analytic gradient of the
/// spread-pattern information content (the `log Γ(m/2)` term of Eq. 19
/// with real-valued, direction-dependent degrees of freedom `m(w)`).
pub fn digamma(x: f64) -> f64 {
    assert!(x > 0.0, "digamma: x must be positive");
    let mut x = x;
    let mut acc = 0.0;
    while x < 12.0 {
        acc -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    acc + x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n−1)!
        let facts = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            let lg = ln_gamma((n + 1) as f64);
            assert!((lg - f.ln()).abs() < 1e-12, "Γ({}) mismatch", n + 1);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
        // Γ(3/2) = √π/2
        let expect = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((ln_gamma(1.5) - expect).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x) over a range of real x.
        for i in 1..60 {
            let x = i as f64 * 0.37;
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-10, "recurrence fails at x={x}");
        }
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.520_499_877_813_046_5),
            (1.0, 0.842_700_792_949_714_9),
            (2.0, 0.995_322_265_018_952_7),
            (3.0, 0.999_977_909_503_001_4),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 1e-10, "erf({x})");
            assert!((erf(-x) + want).abs() < 1e-10, "erf(−{x})");
        }
    }

    #[test]
    fn erf_is_monotone_and_bounded() {
        let mut last = -1.0;
        let mut x = -5.0;
        while x <= 5.0 {
            let e = erf(x);
            assert!((-1.0..=1.0).contains(&e));
            assert!(e >= last - 1e-15);
            last = e;
            x += 0.01;
        }
    }

    #[test]
    fn reg_gamma_special_cases() {
        // P(1, x) = 1 − e^{−x}
        for &x in &[0.1f64, 0.5, 1.0, 3.0, 10.0] {
            let want = 1.0 - (-x).exp();
            assert!((reg_lower_gamma(1.0, x) - want).abs() < 1e-12, "P(1,{x})");
        }
        // P(a, 0) = 0; P(a, ∞) → 1
        assert_eq!(reg_lower_gamma(2.5, 0.0), 0.0);
        assert!((reg_lower_gamma(2.5, 1e4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reg_gamma_chi2_consistency() {
        // χ²_k CDF at its mean is a known slowly-varying quantity; check
        // median ordering: CDF(k − 2/3) ≈ 0.5 within 2%.
        for &k in &[1.0f64, 2.0, 5.0, 10.0, 50.0] {
            let median_approx = k * (1.0 - 2.0 / (9.0 * k)).powi(3);
            let p = reg_lower_gamma(k / 2.0, median_approx / 2.0);
            assert!((p - 0.5).abs() < 0.02, "k={k}, p={p}");
        }
    }

    #[test]
    fn digamma_reference_values() {
        // ψ(1) = −γ (Euler–Mascheroni), ψ(1/2) = −γ − 2 ln 2.
        const EULER: f64 = 0.577_215_664_901_532_9;
        assert!((digamma(1.0) + EULER).abs() < 1e-12);
        assert!((digamma(0.5) + EULER + 2.0 * (2.0_f64).ln()).abs() < 1e-12);
        // ψ(2) = 1 − γ.
        assert!((digamma(2.0) - (1.0 - EULER)).abs() < 1e-12);
    }

    #[test]
    fn digamma_is_lngamma_derivative() {
        for &x in &[0.3f64, 0.9, 2.4, 7.7, 40.0] {
            let h = 1e-6 * x.max(1.0);
            let fd = (ln_gamma(x + h) - ln_gamma(x - h)) / (2.0 * h);
            assert!((digamma(x) - fd).abs() < 1e-6, "x={x}");
        }
    }

    #[test]
    fn reg_gamma_is_monotone_in_x() {
        let mut last = 0.0;
        let mut x = 0.0;
        while x < 30.0 {
            let p = reg_lower_gamma(3.7, x);
            assert!(p >= last - 1e-15);
            last = p;
            x += 0.05;
        }
    }
}
