//! Chi-squared distribution with real-valued degrees of freedom.
//!
//! The Zhang (2005) approximation used for spread patterns (paper Eq. 18)
//! matches three moments of `Σ aᵢ χ²₁` to an affine function `α χ²_m + β`
//! of a χ² variable whose degrees of freedom `m` is generally *not* an
//! integer, so the implementation works with real `k > 0` throughout.

use crate::special::{ln_gamma, reg_lower_gamma};

/// χ² distribution with `k > 0` (real) degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    /// Degrees of freedom.
    pub k: f64,
}

impl ChiSquared {
    /// Creates the distribution.
    ///
    /// # Panics
    /// Panics unless `k` is positive and finite.
    pub fn new(k: f64) -> Self {
        assert!(k > 0.0 && k.is_finite(), "ChiSquared: k must be positive");
        Self { k }
    }

    /// Log-density at `x` (−∞ for `x ≤ 0` except the `k < 2` boundary).
    pub fn ln_pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return f64::NEG_INFINITY;
        }
        if x == 0.0 {
            // Density diverges for k < 2, is 0.5 at k = 2, zero for k > 2.
            return if self.k < 2.0 {
                f64::INFINITY
            } else if self.k == 2.0 {
                (0.5_f64).ln()
            } else {
                f64::NEG_INFINITY
            };
        }
        let h = self.k / 2.0;
        (h - 1.0) * x.ln() - x / 2.0 - h * (2.0_f64).ln() - ln_gamma(h)
    }

    /// Density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        reg_lower_gamma(self.k / 2.0, x / 2.0)
    }

    /// Mean `k`.
    pub fn mean(&self) -> f64 {
        self.k
    }

    /// Variance `2k`.
    pub fn variance(&self) -> f64 {
        2.0 * self.k
    }

    /// Mode `max(k − 2, 0)`.
    pub fn mode(&self) -> f64 {
        (self.k - 2.0).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdf_integrates_to_one() {
        // Trapezoid quadrature over a generous range.
        for &k in &[1.0, 2.0, 3.5, 10.0] {
            let d = ChiSquared::new(k);
            // The density is singular at 0 for k < 2; start the quadrature
            // at a small positive point and add the analytic mass below it.
            let (lo, hi, steps) = (0.01, k + 40.0 * (2.0 * k).sqrt(), 400_000);
            let h = (hi - lo) / steps as f64;
            let mut integral = d.cdf(lo);
            let mut prev = d.pdf(lo);
            for i in 1..=steps {
                let x = lo + h * i as f64;
                let cur = d.pdf(x);
                integral += 0.5 * (prev + cur) * h;
                prev = cur;
            }
            assert!((integral - 1.0).abs() < 1e-3, "k={k}: ∫pdf = {integral}");
        }
    }

    #[test]
    fn cdf_matches_known_values() {
        // χ²₂ CDF is 1 − e^{−x/2}.
        let d = ChiSquared::new(2.0);
        for &x in &[0.5, 1.0, 3.0, 8.0] {
            assert!((d.cdf(x) - (1.0 - (-x / 2.0_f64).exp())).abs() < 1e-12);
        }
        // χ²₁ CDF at 3.841 ≈ 0.95 (the familiar critical value).
        let d1 = ChiSquared::new(1.0);
        assert!((d1.cdf(3.841_458_820_694_124) - 0.95).abs() < 1e-9);
    }

    #[test]
    fn pdf_at_mode_for_k_gt_2() {
        let d = ChiSquared::new(5.0);
        let m = d.mode();
        assert!((m - 3.0).abs() < 1e-15);
        // Density near the mode dominates neighbours.
        assert!(d.pdf(m) > d.pdf(m - 0.5));
        assert!(d.pdf(m) > d.pdf(m + 0.5));
    }

    #[test]
    fn moments() {
        let d = ChiSquared::new(7.5);
        assert_eq!(d.mean(), 7.5);
        assert_eq!(d.variance(), 15.0);
    }

    #[test]
    fn negative_support_has_zero_density() {
        let d = ChiSquared::new(3.0);
        assert_eq!(d.pdf(-1.0), 0.0);
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.ln_pdf(-1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn fractional_dof_is_supported() {
        let d = ChiSquared::new(0.7);
        assert!(d.pdf(0.5) > 0.0);
        assert!(d.cdf(100.0) > 0.999);
        let d2 = ChiSquared::new(3.3);
        // CDF is monotone.
        assert!(d2.cdf(2.0) < d2.cdf(3.0));
    }
}
