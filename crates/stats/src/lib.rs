//! Statistical substrate for the SISD reproduction.
//!
//! This crate is self-contained (no dependencies) and provides everything the
//! paper's interestingness machinery needs beyond linear algebra:
//!
//! * [`rng`] — a deterministic xoshiro256++ generator with normal /
//!   Bernoulli / categorical sampling. The library rolls its own RNG so that
//!   every experiment is reproducible bit-for-bit across platforms.
//! * [`special`] — ln-gamma, erf, and the regularized incomplete gamma
//!   function, the building blocks of the χ² distribution.
//! * [`chi2`] — χ² density/CDF with real-valued degrees of freedom, needed
//!   by the spread-pattern information content (paper Eq. 19).
//! * [`mixture`] — the Zhang (2005) three-moment approximation of a positive
//!   linear combination of χ²₁ variables (paper Eq. 18).
//! * [`normal`] — univariate normal pdf/cdf/quantile.
//! * [`kde`] — Gaussian kernel density estimation (paper Fig. 1).
//! * [`mod@quantile`] — percentiles/quantiles for the discretization split
//!   points (§III: 1/5–4/5 percentiles).
//! * [`summary`] — streaming mean/variance and weighted summaries.

pub mod chi2;
pub mod correlation;
pub mod histogram;
pub mod kde;
pub mod mixture;
pub mod normal;
pub mod quantile;
pub mod rng;
pub mod special;
pub mod summary;

pub use chi2::ChiSquared;
pub use correlation::{pearson, spearman};
pub use histogram::Histogram;
pub use kde::GaussianKde;
pub use mixture::Chi2MixtureApprox;
pub use normal::Normal;
pub use quantile::{percentile_split_points, quantile};
pub use rng::Xoshiro256pp;
pub use summary::RunningStats;
