//! Correlation measures.
//!
//! Used by the harness binaries to verify planted dataset structure (e.g.
//! the mammal simulacrum's climate gradients) and generally useful when
//! interpreting mined subgroups — the paper's case studies repeatedly
//! reason about correlations ("these parties really appear to battle for
//! the same voters", "notice that these three species correlate").

/// Pearson product-moment correlation of two equal-length samples.
///
/// Returns 0 when either sample is (numerically) constant.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson: length mismatch");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mx = x.iter().sum::<f64>() / nf;
    let my = y.iter().sum::<f64>() / nf;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    let denom = (vx * vy).sqrt();
    if denom <= 1e-300 {
        0.0
    } else {
        (cov / denom).clamp(-1.0, 1.0)
    }
}

/// Fractional ranks with midranks for ties (average of tied positions).
fn ranks(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| x[a].partial_cmp(&x[b]).expect("ranks: NaN in data"));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && x[order[j + 1]] == x[order[i]] {
            j += 1;
        }
        // Positions i..=j share the value; assign the midrank.
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = midrank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson on midranks; tie-safe).
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "spearman: length mismatch");
    pearson(&ranks(x), &ranks(y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    #[test]
    fn perfect_linear_correlation() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 7.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_input_gives_zero() {
        let x = vec![1.0; 10];
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(pearson(&x, &y), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn independent_samples_near_zero() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let x: Vec<f64> = (0..20_000).map(|_| rng.normal()).collect();
        let y: Vec<f64> = (0..20_000).map(|_| rng.normal()).collect();
        assert!(pearson(&x, &y).abs() < 0.03);
        assert!(spearman(&x, &y).abs() < 0.03);
    }

    #[test]
    fn spearman_is_invariant_to_monotone_transform() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let x: Vec<f64> = (0..500).map(|_| rng.normal()).collect();
        let y: Vec<f64> = x.iter().map(|v| v + 0.3 * rng.normal()).collect();
        let y_warped: Vec<f64> = y.iter().map(|v| v.exp()).collect();
        let s1 = spearman(&x, &y);
        let s2 = spearman(&x, &y_warped);
        assert!((s1 - s2).abs() < 1e-12, "{s1} vs {s2}");
        assert!(s1 > 0.8);
    }

    #[test]
    fn midranks_handle_ties() {
        // Ordinal data with heavy ties (water-quality levels).
        let x = vec![0.0, 0.0, 3.0, 3.0, 5.0];
        let r = ranks(&x);
        assert_eq!(r, vec![1.5, 1.5, 3.5, 3.5, 5.0]);
        // Spearman of tied-but-aligned data is still 1.
        let y = vec![1.0, 1.0, 2.0, 2.0, 9.0];
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_is_symmetric_and_bounded() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let x: Vec<f64> = (0..200).map(|_| rng.normal()).collect();
        let y: Vec<f64> = (0..200).map(|_| rng.normal() + 0.5 * x[0]).collect();
        let a = pearson(&x, &y);
        let b = pearson(&y, &x);
        assert!((a - b).abs() < 1e-15);
        assert!((-1.0..=1.0).contains(&a));
    }
}
