//! Quantiles and the percentile split points used for discretization.
//!
//! The paper's beam search (§III) forms numeric conditions `x ≥ q` / `x ≤ q`
//! at "four split points (1/5–4/5 percentiles)". [`percentile_split_points`]
//! produces exactly those, deduplicated when the empirical distribution has
//! heavy ties (e.g. ordinal bioindicator levels 0/1/3/5).

/// Linear-interpolation quantile (type-7, the R/NumPy default) of `xs` at
/// probability `p ∈ [0, 1]`.
///
/// Sorts a copy; for repeated use sort once and call
/// [`quantile_sorted`].
pub fn quantile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile: empty slice");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("quantile: NaN in data"));
    quantile_sorted(&v, p)
}

/// Quantile of an already ascending-sorted slice.
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile_sorted: empty slice");
    assert!((0.0..=1.0).contains(&p), "quantile: p must be in [0,1]");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = p * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = h - lo as f64;
        sorted[lo] + frac * (sorted[hi] - sorted[lo])
    }
}

/// The `k` equally spaced interior percentile split points of `xs`
/// (`k = 4` gives the paper's 20/40/60/80th percentiles), deduplicated and
/// excluding values equal to the sample min or max (conditions there would
/// be trivially true/false).
pub fn percentile_split_points(xs: &[f64], k: usize) -> Vec<f64> {
    assert!(k >= 1, "percentile_split_points: k must be >= 1");
    let mut v = xs.to_vec();
    if v.is_empty() {
        return Vec::new();
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("split points: NaN in data"));
    let (min, max) = (v[0], v[v.len() - 1]);
    let mut out = Vec::with_capacity(k);
    for i in 1..=k {
        let p = i as f64 / (k + 1) as f64;
        let q = quantile_sorted(&v, p);
        if q > min && q < max && out.last().is_none_or(|&last| q > last) {
            out.push(q);
        }
    }
    out
}

/// Median convenience wrapper.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_of_linear_data() {
        let xs: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert!((quantile(&xs, 0.0) - 0.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.5) - 50.0).abs() < 1e-12);
        assert!((quantile(&xs, 1.0) - 100.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.25) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        // h = 0.5 * 3 = 1.5 → between 2.0 and 3.0
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn single_element() {
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
    }

    #[test]
    fn split_points_match_paper_percentiles() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let sp = percentile_split_points(&xs, 4);
        assert_eq!(sp.len(), 4);
        // 20/40/60/80th percentiles of 1..=100 under type-7.
        assert!((sp[0] - 20.8).abs() < 1e-9);
        assert!((sp[1] - 40.6).abs() < 1e-9);
        assert!((sp[2] - 60.4).abs() < 1e-9);
        assert!((sp[3] - 80.2).abs() < 1e-9);
    }

    #[test]
    fn split_points_dedup_on_ties() {
        // Ordinal data with massive ties: levels 0, 0, 0, ..., 5.
        let mut xs = vec![0.0; 80];
        xs.extend(vec![3.0; 15]);
        xs.extend(vec![5.0; 5]);
        let sp = percentile_split_points(&xs, 4);
        // Most percentiles collapse onto 0 (= min, excluded); remaining
        // splits must be strictly increasing and interior.
        for w in sp.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &q in &sp {
            assert!(q > 0.0 && q < 5.0);
        }
    }

    #[test]
    fn constant_column_yields_no_splits() {
        let xs = vec![2.0; 50];
        assert!(percentile_split_points(&xs, 4).is_empty());
    }

    #[test]
    fn median_works() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
    }
}
