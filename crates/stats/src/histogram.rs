//! Fixed-bin histograms.
//!
//! A lightweight companion to the KDE of Fig. 1: harness binaries and
//! downstream users often want raw counts (or frequencies) of a target
//! attribute inside vs outside a subgroup before smoothing anything.

/// A histogram over `[lo, hi]` with equally wide bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Observations below `lo` / above `hi`.
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    ///
    /// # Panics
    /// Panics unless `hi > lo` and `bins >= 1`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "Histogram: hi must exceed lo");
        assert!(bins >= 1, "Histogram: need at least one bin");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Builds from a sample with bounds at the sample min/max.
    pub fn from_sample(xs: &[f64], bins: usize) -> Self {
        assert!(!xs.is_empty(), "Histogram: empty sample");
        let (mut lo, mut hi) = (f64::MAX, f64::MIN);
        for &x in xs {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        if hi <= lo {
            hi = lo + 1.0; // constant sample: single meaningful bin
        }
        let mut h = Self::new(lo, hi, bins);
        h.extend(xs);
        h
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        if x > self.hi {
            self.overflow += 1;
            return;
        }
        let n = self.counts.len();
        let frac = (x - self.lo) / (self.hi - self.lo);
        let idx = ((frac * n as f64) as usize).min(n - 1);
        self.counts[idx] += 1;
    }

    /// Adds every element of a slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Out-of-range observations `(under, over)`.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// The histogram's `(lo, hi)` range.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Bin centre of bin `i`.
    pub fn center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// Normalized densities (integrate to 1 over the range).
    pub fn densities(&self) -> Vec<f64> {
        let total = self.total().max(1) as f64;
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .map(|&c| c as f64 / (total * w))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_data_fills_evenly() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64 / 999.0).collect();
        let h = Histogram::from_sample(&xs, 10);
        for &c in h.counts() {
            assert!((95..=105).contains(&(c as usize)), "{:?}", h.counts());
        }
        assert_eq!(h.total(), 1000);
    }

    #[test]
    fn out_of_range_tracking() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.extend(&[-1.0, 0.5, 2.0, 0.99]);
        assert_eq!(h.out_of_range(), (1, 1));
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn densities_integrate_to_one() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64 * 0.77).sin()).collect();
        let h = Histogram::from_sample(&xs, 20);
        let (lo, hi) = h.range();
        let w = (hi - lo) / 20.0;
        let integral: f64 = h.densities().iter().map(|d| d * w).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert!((h.center(0) - 1.0).abs() < 1e-12);
        assert!((h.center(4) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn constant_sample_does_not_panic() {
        let h = Histogram::from_sample(&[3.0; 50], 4);
        assert_eq!(h.total(), 50);
    }

    #[test]
    fn max_value_lands_in_last_bin() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(1.0);
        assert_eq!(h.counts()[3], 1);
        assert_eq!(h.out_of_range(), (0, 0));
    }
}
