//! Streaming summary statistics (Welford) and simple batch summaries.

/// Numerically stable running mean/variance accumulator (Welford's
/// algorithm), used by dataset generators and test assertions.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds every element of a slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Count of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by n).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Unbiased sample variance (divides by n − 1).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum seen (∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum seen (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator (parallel Welford combination).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Batch mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Batch population variance of a slice.
pub fn variance(xs: &[f64]) -> f64 {
    let mut s = RunningStats::new();
    s.extend(xs);
    s.variance()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_batch() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let mut s = RunningStats::new();
        s.extend(&xs);
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 4.0).abs() < 1e-12);
        let batch_var = xs.iter().map(|x| (x - 4.0) * (x - 4.0)).sum::<f64>() / 5.0;
        assert!((s.variance() - batch_var).abs() < 1e-12);
        assert!((s.sample_variance() - batch_var * 5.0 / 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = RunningStats::new();
        all.extend(&xs);
        let mut a = RunningStats::new();
        a.extend(&xs[..37]);
        let mut b = RunningStats::new();
        b.extend(&xs[37..]);
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn empty_and_single() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.variance(), 0.0);
        let mut s1 = RunningStats::new();
        s1.push(5.0);
        assert_eq!(s1.mean(), 5.0);
        assert_eq!(s1.sample_variance(), 0.0);
    }

    #[test]
    fn merge_into_empty() {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        b.extend(&[1.0, 2.0]);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 1.5).abs() < 1e-15);
    }

    #[test]
    fn batch_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[2.0, 4.0]), 1.0);
    }
}
