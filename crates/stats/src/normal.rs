//! Univariate normal distribution.

#![allow(clippy::excessive_precision)] // reference constants are quoted in full

use crate::special::erf;

/// A univariate normal distribution `N(mean, sd²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Mean.
    pub mean: f64,
    /// Standard deviation (must be positive).
    pub sd: f64,
}

impl Normal {
    /// Standard normal `N(0, 1)`.
    pub const STANDARD: Normal = Normal { mean: 0.0, sd: 1.0 };

    /// Creates a normal distribution.
    ///
    /// # Panics
    /// Panics if `sd` is not strictly positive and finite.
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(sd > 0.0 && sd.is_finite(), "Normal: sd must be positive");
        Self { mean, sd }
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.sd;
        (-0.5 * z * z).exp() / (self.sd * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Log-density at `x`.
    pub fn ln_pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.sd;
        -0.5 * z * z - self.sd.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.sd * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }

    /// Quantile (inverse CDF) via the Acklam rational approximation with one
    /// Halley refinement step; relative error below 1e-13.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "Normal::quantile: p must be in [0,1]"
        );
        if p == 0.0 {
            return f64::NEG_INFINITY;
        }
        if p == 1.0 {
            return f64::INFINITY;
        }
        self.mean + self.sd * std_normal_quantile(p)
    }

    /// Two-sided `level` confidence interval half-width for the mean, i.e.
    /// `z_{(1+level)/2} · sd`. Used for the ±95% bands in Fig. 5.
    pub fn ci_half_width(&self, level: f64) -> f64 {
        assert!((0.0..1.0).contains(&level), "ci level must be in [0,1)");
        std_normal_quantile(0.5 + level / 2.0) * self.sd
    }
}

/// Standard normal quantile (Acklam's algorithm + Halley polish).
fn std_normal_quantile(p: f64) -> f64 {
    // Coefficients for the central and tail rational approximations.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_690e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley step against the exact CDF for full double precision.
    let n = Normal::STANDARD;
    let e = n.cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdf_peak_and_symmetry() {
        let n = Normal::STANDARD;
        let peak = 1.0 / (2.0 * std::f64::consts::PI).sqrt();
        assert!((n.pdf(0.0) - peak).abs() < 1e-15);
        assert!((n.pdf(1.3) - n.pdf(-1.3)).abs() < 1e-15);
        assert!((n.ln_pdf(0.7) - n.pdf(0.7).ln()).abs() < 1e-12);
    }

    #[test]
    fn cdf_known_values() {
        let n = Normal::STANDARD;
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((n.cdf(1.96) - 0.975_002_104_851_780).abs() < 1e-9);
        assert!((n.cdf(-1.96) - 0.024_997_895_148_220).abs() < 1e-9);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let n = Normal::new(2.0, 3.0);
        for &p in &[1e-6, 0.01, 0.25, 0.5, 0.8, 0.99, 1.0 - 1e-6] {
            let x = n.quantile(p);
            assert!((n.cdf(x) - p).abs() < 1e-12, "p={p}");
        }
        assert_eq!(n.quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(n.quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn ci_95_is_1_96_sigma() {
        let n = Normal::new(0.0, 2.0);
        assert!((n.ci_half_width(0.95) - 1.959_963_984_540_054 * 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "sd must be positive")]
    fn zero_sd_rejected() {
        Normal::new(0.0, 0.0);
    }
}
