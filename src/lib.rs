//! Umbrella crate for the SISD reproduction workspace.
//!
//! Re-exports the public API of every member crate so that examples and
//! integration tests can use a single import root.

pub use sisd_baselines as baselines;
pub use sisd_core as core;
pub use sisd_data as data;
pub use sisd_linalg as linalg;
pub use sisd_model as model;
pub use sisd_search as search;
pub use sisd_stats as stats;
