//! Umbrella crate for the SISD reproduction workspace.
//!
//! Re-exports the public API of every member crate so that examples and
//! integration tests can use a single import root, and bundles the
//! end-to-end mining surface in [`prelude`].
//!
//! ```
//! use sisd::prelude::*;
//!
//! let (data, _planted) = datasets::synthetic_paper(7);
//! let config = MinerConfig::default();
//! let mut miner = Miner::from_empirical(data, config).unwrap();
//! let result = miner.search_locations();
//! assert!(!result.top.is_empty());
//! ```

pub use sisd_baselines as baselines;
pub use sisd_core as core;
pub use sisd_data as data;
pub use sisd_exec as exec;
pub use sisd_frontier as frontier;
pub use sisd_linalg as linalg;
pub use sisd_model as model;
pub use sisd_obs as obs;
pub use sisd_par as par;
pub use sisd_search as search;
pub use sisd_stats as stats;

/// The end-to-end mining API in one import: dataset containers and
/// generators, the background model, the beam/sphere/miner search surface,
/// the SI scores, and the shared [`SisdError`](sisd_core::SisdError).
pub mod prelude {
    pub use sisd_core::{
        location_ic, location_si, parse_intention, spread_ic, spread_si, Condition, ConditionOp,
        DlParams, Intention, LocationPattern, LocationScore, SisdError, SisdResult, SpreadPattern,
        SpreadScore,
    };
    pub use sisd_data::{datasets, BitSet, Column, Dataset, ShardPlan, ShardedDataset};
    pub use sisd_linalg::Matrix;
    pub use sisd_model::{BackgroundModel, BinaryBackgroundModel};
    pub use sisd_obs::{JsonlSink, Metric, NullSink, Obs, ObsHandle, RingSink, SearchReport};
    pub use sisd_search::{
        generate_conditions, mine_spread_pattern, BeamConfig, BeamResult, BeamSearch, EvalConfig,
        Evaluator, Iteration, Miner, MinerConfig, RefineConfig, SphereConfig,
    };
}
