//! End-to-end workflow on a CSV file: load, mine, report, persist.
//!
//! Writes a small synthetic CSV to a temp directory, loads it back through
//! the CSV reader with declared target columns, mines iteratively, and
//! saves the mined subgroup memberships as a new CSV column — the typical
//! downstream-integration loop.
//!
//! ```sh
//! cargo run --release --example csv_workflow
//! ```

use sisd::data::csv::{dataset_from_csv_str, dataset_to_csv_string};
use sisd::data::datasets::water_quality_synthetic;
use sisd::search::{BeamConfig, Miner, MinerConfig, SphereConfig};
use std::fmt::Write as _;

fn main() {
    // Persist a generated dataset as CSV (stand-in for the user's file).
    let generated = water_quality_synthetic(42);
    let csv_text = dataset_to_csv_string(&generated);
    println!(
        "serialized '{}' to CSV: {} bytes, {} rows",
        generated.name,
        csv_text.len(),
        generated.n()
    );

    // Load it back, declaring which columns are targets.
    let target_names: Vec<&str> = generated
        .target_names()
        .iter()
        .map(|s| s.as_str())
        .collect();
    let data =
        dataset_from_csv_str("water-from-csv", &csv_text, &target_names).expect("well-formed CSV");
    assert_eq!(data.n(), generated.n());
    assert_eq!(data.dy(), generated.dy());
    println!(
        "reloaded: {} description attrs, {} targets",
        data.dx(),
        data.dy()
    );

    // Mine two iterations.
    let config = MinerConfig {
        beam: BeamConfig {
            max_depth: 2,
            min_coverage: 30,
            ..BeamConfig::default()
        },
        sphere: SphereConfig::default(),
        two_sparse_spread: false,
        refit_tol: 1e-7,
        refit_max_cycles: 50,
    };
    let mut miner = Miner::from_empirical(data.clone(), config).expect("model fits");
    let mut memberships: Vec<(String, Vec<bool>)> = Vec::new();
    for i in 1..=2 {
        let it = miner
            .step_location()
            .expect("model update")
            .expect("pattern found");
        println!("iteration {i}: {}", it.location.summary(&data));
        let member: Vec<bool> = (0..data.n())
            .map(|r| it.location.extension.contains(r))
            .collect();
        memberships.push((format!("subgroup_{i}"), member));
    }

    // Append membership columns and emit the annotated CSV (head only).
    let mut out = String::new();
    let mut lines = csv_text.lines();
    let header = lines.next().expect("header");
    let _ = write!(out, "{header}");
    for (name, _) in &memberships {
        let _ = write!(out, ",{name}");
    }
    let _ = writeln!(out);
    for (row_idx, line) in lines.enumerate() {
        let _ = write!(out, "{line}");
        for (_, member) in &memberships {
            let _ = write!(out, ",{}", u8::from(member[row_idx]));
        }
        let _ = writeln!(out);
    }
    println!("\nannotated CSV (first 3 lines):");
    for line in out.lines().take(3) {
        let (head, tail) = line.split_at(line.len().min(100));
        println!("  {head}{}", if tail.is_empty() { "" } else { "…" });
    }
}
