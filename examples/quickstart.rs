//! Quickstart: mine the most subjectively interesting subgroup of a small
//! dataset, inspect it, assimilate it, and watch its interestingness
//! collapse.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sisd::core::{location_si, DlParams};
use sisd::data::datasets::synthetic_paper;
use sisd::search::{BeamConfig, Miner, MinerConfig, SphereConfig};

fn main() {
    // 1. Data: 620 points, two real-valued targets, five binary
    //    description attributes; three planted subgroups (paper §III-A).
    let (data, _truth) = synthetic_paper(42);
    println!(
        "dataset '{}': n = {}, {} description attrs, {} targets",
        data.name,
        data.n(),
        data.dx(),
        data.dy()
    );

    // 2. A miner whose background model matches the data's empirical mean
    //    and covariance — the "uninformed user" prior of the paper.
    let config = MinerConfig {
        beam: BeamConfig {
            width: 40,
            max_depth: 4,
            top_k: 150,
            ..BeamConfig::default()
        },
        sphere: SphereConfig::default(),
        two_sparse_spread: false,
        refit_tol: 1e-9,
        refit_max_cycles: 100,
    };
    let mut miner = Miner::from_empirical(data.clone(), config).expect("valid prior");

    // 3. One full iteration: the top location pattern plus the most
    //    interesting spread direction for that subgroup.
    let iteration = miner
        .step_with_spread()
        .expect("model update succeeds")
        .expect("a pattern exists");
    println!("\nlocation pattern : {}", iteration.location.summary(&data));
    let spread = iteration.spread.expect("spread mined");
    println!("spread pattern   : {}", spread.summary(&data));

    // 4. The pattern is now part of the modeled belief state: re-scoring
    //    the same subgroup yields a near-zero (here slightly negative) SI.
    let rescored = location_si(
        miner.model_mut(),
        &data,
        &iteration.location.intention,
        &iteration.location.extension,
        &DlParams::default(),
    )
    .expect("non-empty subgroup");
    println!(
        "\nSI before assimilation: {:.2}, after: {:.2}",
        iteration.location.score.si, rescored.si
    );

    // 5. Keep iterating: the next pattern is a *different* subgroup.
    let second = miner
        .step_with_spread()
        .expect("model update succeeds")
        .expect("a pattern exists");
    println!("next pattern     : {}", second.location.summary(&data));
    assert_ne!(
        iteration.location.extension, second.location.extension,
        "iterative mining must not repeat itself"
    );
}
