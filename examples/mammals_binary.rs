//! Binary-target mining on the mammal atlas (the §V extension).
//!
//! The paper mines the 124 presence/absence species indicators with the
//! Gaussian background model (treating 0/1 as reals) and notes that binary
//! targets really call for a different derivation. This example runs both
//! models side by side on the mammal simulacrum: the Bernoulli MaxEnt model
//! of `sisd_model::binary` against the paper's Gaussian model, comparing
//! the subgroups each considers most informative.
//!
//! ```sh
//! cargo run --release --example mammals_binary
//! ```

use sisd::data::datasets::mammals_synthetic;
use sisd::model::{BackgroundModel, BinaryBackgroundModel};
use sisd::search::{binary_step, BeamConfig, BeamSearch, EvalConfig};

fn main() {
    let (data, coords) = mammals_synthetic(42);
    println!(
        "mammal simulacrum: {} cells, {} climate attrs, {} species",
        data.n(),
        data.dx(),
        data.dy()
    );

    let cfg = BeamConfig {
        width: 20,
        max_depth: 2,
        top_k: 50,
        min_coverage: 50,
        // Both models' searches evaluate candidates on 4 engine threads.
        eval: EvalConfig::with_threads(4),
        ..BeamConfig::default()
    };

    // --- Gaussian model (the paper's setup) ---
    let gauss = BackgroundModel::from_empirical(&data).expect("model");
    let g_result = BeamSearch::new(cfg.clone()).run(&data, &gauss);
    let g_best = g_result.best().expect("pattern found");
    println!("\nGaussian model top pattern : {}", g_best.summary(&data));

    // --- Bernoulli model (§V extension) ---
    let mut bern = BinaryBackgroundModel::from_empirical(&data).expect("binary targets");
    println!("\nBernoulli model, 3 iterations:");
    for i in 1..=3 {
        let Some(p) = binary_step(&data, &mut bern, &cfg) else {
            break;
        };
        // Geographic centroid for interpretation.
        let (mut lat, mut lon) = (0.0, 0.0);
        for r in p.extension.iter() {
            lat += coords[r].0;
            lon += coords[r].1;
        }
        let m = p.extension.count() as f64;
        println!(
            "  iter {i}: {} | centroid {:.1}°N {:.1}°E",
            p.summary(&data),
            lat / m,
            lon / m
        );
    }
    println!(
        "\nBoth models key on the same climate structure; the Bernoulli IC\n\
         additionally respects the mean–variance coupling of 0/1 indicators\n\
         (no spread patterns — a Bernoulli's variance is fixed by its mean)."
    );
}
