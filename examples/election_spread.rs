//! The socio-economics case study (§III-C): multivariate targets, iterative
//! mining with both location and 2-sparse spread patterns, and explicit
//! prior beliefs.
//!
//! The user is assumed to know the country-wide 2009 election outcome (the
//! prior mean) but nothing about regional structure; mining then reveals
//! the East-German voting block and the CDU/SPD-style anti-correlated
//! "battle for the same voters" inside it.
//!
//! ```sh
//! cargo run --release --example election_spread
//! ```

use sisd::data::datasets::german_socio_synthetic;
use sisd::search::{BeamConfig, Miner, MinerConfig, SphereConfig};

fn main() {
    let (data, truth) = german_socio_synthetic(42);
    println!(
        "socio-economics simulacrum: {} districts, targets: {:?}",
        data.n(),
        data.target_names()
    );

    // Explicit prior: the empirical country-wide vote means/covariance —
    // "we assume a user initially knows the overall voting behavior".
    let prior_mean = data.target_mean_all();
    let prior_cov = data.target_covariance_all();
    let config = MinerConfig {
        beam: BeamConfig {
            min_coverage: 10,
            ..BeamConfig::default()
        },
        sphere: SphereConfig::default(),
        two_sparse_spread: true, // §III-C's interpretability constraint
        refit_tol: 1e-9,
        refit_max_cycles: 100,
    };
    let mut miner =
        Miner::with_prior(data.clone(), prior_mean, prior_cov, config).expect("valid prior");

    for i in 1..=3 {
        let iteration = miner
            .step_with_spread()
            .expect("model update succeeds")
            .expect("a pattern exists");
        println!("\n--- iteration {i} ---");
        println!("location: {}", iteration.location.summary(&data));

        // How east is this subgroup? (geography is interpretation-only)
        let east_frac = iteration
            .location
            .extension
            .iter()
            .filter(|&r| truth.east[r])
            .count() as f64
            / iteration.location.extension.count() as f64;
        println!(
            "          {:.0}% of covered districts are eastern",
            100.0 * east_frac
        );

        let spread = iteration.spread.expect("spread mined");
        println!("spread  : {}", spread.summary(&data));
        println!(
            "          variance along w is {:.2}x the model's expectation",
            spread.variance_ratio()
        );
    }

    println!(
        "\nmodel now holds {} constraints over {} parameter cells; max violation {:.2e}",
        miner.model().constraints().len(),
        miner.model().n_cells(),
        miner.model().max_violation()
    );
}
