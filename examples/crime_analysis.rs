//! The paper's introductory use case: learn what drives violent crime
//! rates across districts (§I, Fig. 1).
//!
//! Demonstrates: single real-valued target, a wide (122-attribute)
//! description space, comparing the subjective-interestingness ranking
//! against classic subgroup-discovery quality measures, and certifying the
//! beam's answer with the exact branch-and-bound miner.
//!
//! ```sh
//! cargo run --release --example crime_analysis
//! ```

use sisd::baselines::{top_k_by_quality, DispersionCorrected, MeanShiftZ, Quality, WrAcc};
use sisd::data::datasets::crime_synthetic;
use sisd::model::BackgroundModel;
use sisd::search::{branch_bound::branch_bound_search, BeamConfig, BeamSearch, BranchBoundConfig};

fn main() {
    let data = crime_synthetic(42);
    println!(
        "crime simulacrum: {} districts, {} demographic attributes, target '{}'",
        data.n(),
        data.dx(),
        data.target_names()[0]
    );
    let overall = data.target_mean_all()[0];
    println!("overall violent-crime mean: {overall:.3}");

    // --- SISD: beam search under the MaxEnt background model ---
    let model = BackgroundModel::from_empirical(&data).expect("model");
    let beam = BeamSearch::new(BeamConfig {
        min_coverage: 20,
        ..BeamConfig::default()
    });
    let result = beam.run(&data, &model);
    println!("\n== subjective interestingness (this paper) ==");
    for p in result.top.iter().take(3) {
        println!("  {}", p.summary(&data));
    }

    // --- Certify with branch-and-bound (exact, dy = 1) ---
    let model2 = BackgroundModel::from_empirical(&data).expect("model");
    let bb = branch_bound_search(
        &data,
        &model2,
        BranchBoundConfig {
            max_depth: 2,
            min_coverage: 20,
            ..BranchBoundConfig::default()
        },
    );
    let best = bb.best.expect("optimum exists");
    println!(
        "\nexact optimum (depth <= 2): {}\n  ({} nodes evaluated, {} subtrees pruned)",
        best.summary(&data),
        bb.evaluated,
        bb.pruned
    );

    // --- Classic quality measures for contrast ---
    println!("\n== classic subgroup-discovery baselines ==");
    let measures: Vec<Box<dyn Quality>> = vec![
        Box::new(WrAcc {
            threshold: overall + 0.2,
        }),
        Box::new(MeanShiftZ { a: 0.5 }),
        Box::new(DispersionCorrected { a: 0.5 }),
    ];
    for m in &measures {
        let top = top_k_by_quality(&data, m.as_ref(), 1, 20, 2, 20);
        if let Some(p) = top.first() {
            println!(
                "  {:<22} -> {} (quality {:.4}, n={})",
                m.name(),
                p.intention.describe(&data),
                p.quality,
                p.extension.count()
            );
        }
    }
    println!(
        "\nAll objectives agree on the driver attribute here; the subjective-\n\
         interestingness ranking additionally prices in coverage, multivariate\n\
         structure and — across iterations — what the user has already seen."
    );
}
