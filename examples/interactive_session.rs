//! Manual control of the FORSIED loop: inspect the full beam log, choose a
//! pattern yourself, explain it, then assimilate — the workflow of an
//! analyst who doesn't always take the top suggestion.
//!
//! ```sh
//! cargo run --release --example interactive_session
//! ```

use sisd::core::explain_location;
use sisd::data::datasets::water_quality_synthetic;
use sisd::search::{BeamConfig, Miner, MinerConfig, SphereConfig};

fn main() {
    let data = water_quality_synthetic(42);
    let config = MinerConfig {
        beam: BeamConfig {
            width: 20,
            max_depth: 2,
            top_k: 150,
            min_coverage: 30,
            ..BeamConfig::default()
        },
        sphere: SphereConfig::default(),
        two_sparse_spread: false,
        refit_tol: 1e-7,
        refit_max_cycles: 50,
    };
    let mut miner = Miner::from_empirical(data.clone(), config).expect("model fits");

    // 1. Search once and look at the whole log, not just the winner.
    let result = miner.search_locations();
    println!("beam log (top 5 of {}):", result.top.len());
    for (rank, p) in result.top.iter().take(5).enumerate() {
        println!("  #{:<2} {}", rank + 1, p.summary(&data));
    }

    // 2. Suppose the analyst prefers rank 3 (e.g. it names a taxon they
    //    trust). Explain it against the current belief state first.
    let chosen = result.top[2].clone();
    println!("\nchosen pattern: {}", chosen.intention.describe(&data));
    let explanation = explain_location(miner.model(), &data, &chosen.intention, &chosen.extension)
        .expect("non-empty subgroup");
    println!(
        "{} of {} chemical parameters fall outside the 95% band:",
        explanation.n_surprising(0.95),
        data.dy()
    );
    print!("{}", explanation.render(5, 0.95));

    // 3. Assimilate the *chosen* pattern (not the top one) and re-search:
    //    everything redundant with it has collapsed.
    miner.assimilate_location(&chosen).expect("assimilation");
    let again = miner.search_locations();
    println!("\nafter assimilating the chosen pattern, the new top is:");
    println!("  {}", again.best().expect("pattern found").summary(&data));

    // 4. The previously chosen subgroup is now unremarkable.
    let re_explained = explain_location(miner.model(), &data, &chosen.intention, &chosen.extension)
        .expect("non-empty subgroup");
    println!(
        "re-checking the chosen subgroup: {} parameters still surprising",
        re_explained.n_surprising(0.95)
    );
}
