#!/usr/bin/env python3
"""Validate a sisd-obs JSONL trace against the run's printed search report.

Usage: validate_trace.py TRACE.jsonl STDOUT.txt

Checks, in order:

1. Every line of the trace parses as JSON with the event schema
   (t/kind/metric/v, plus depth on spans) and a known metric name.
2. The trace is non-empty.
3. Reconciliation against the `#tsv metrics` block in the captured stdout:
   counter and span events for a metric SUM to the reported value; gauge
   events last-write-match it (gauges may also be re-sampled after the
   last event was written, in which case the trace value must not exceed
   the report's monotone gauges).
4. Internal invariants:
   frontier.refine_calls == frontier.grid_dispatch + frontier.fused_dispatch,
   frontier.candidates == count_pruned + dedup_dropped + materialized,
   eval.scored <= frontier.materialized is NOT required (strategies can
   score hand-built batches), but eval.batches > 0 whenever eval.scored > 0.
   Executor counters: any executor traffic (bytes, latency, retries,
   fallbacks) implies executor.requests > 0, and retries never exceed
   requests' retry budget trivially (retries counted per extra attempt).

Exits non-zero with a message on the first violation.
"""

import json
import sys

COUNTER, GAUGE, SPAN = "counter", "gauge", "span"


def parse_report_tsv(text):
    """Extract the `#tsv metrics` block: metric name -> int value."""
    values = {}
    lines = text.splitlines()
    try:
        start = lines.index("#tsv metrics")
    except ValueError:
        sys.exit("stdout has no '#tsv metrics' block")
    for line in lines[start + 2 :]:  # skip the header row
        if line.startswith("#end"):
            break
        name, _, raw = line.partition("\t")
        values[name] = int(raw)
    if not values:
        sys.exit("'#tsv metrics' block is empty")
    return values


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    trace_path, stdout_path = sys.argv[1], sys.argv[2]

    with open(stdout_path, encoding="utf-8") as f:
        report = parse_report_tsv(f.read())

    sums = {}  # counter+span accumulation per metric
    last_gauge = {}
    kinds = {}
    n_events = 0
    with open(trace_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"{trace_path}:{lineno}: not JSON: {e}")
            for key in ("t", "kind", "metric", "v"):
                if key not in ev:
                    sys.exit(f"{trace_path}:{lineno}: missing field '{key}'")
            kind, metric, v = ev["kind"], ev["metric"], ev["v"]
            if kind not in (COUNTER, GAUGE, SPAN):
                sys.exit(f"{trace_path}:{lineno}: unknown kind '{kind}'")
            if metric not in report:
                sys.exit(f"{trace_path}:{lineno}: unknown metric '{metric}'")
            if not isinstance(v, int) or v < 0:
                sys.exit(f"{trace_path}:{lineno}: bad value {v!r}")
            if kind == SPAN and "depth" not in ev:
                sys.exit(f"{trace_path}:{lineno}: span without depth")
            prev = kinds.setdefault(metric, kind)
            if prev != kind:
                sys.exit(f"{trace_path}:{lineno}: metric '{metric}' seen as both {prev} and {kind}")
            if kind == GAUGE:
                last_gauge[metric] = v
            else:
                sums[metric] = sums.get(metric, 0) + v
            n_events += 1

    if n_events == 0:
        sys.exit(f"{trace_path}: empty trace")

    # Counter/span events must sum exactly to the reported totals.
    for metric, total in sums.items():
        if total != report[metric]:
            sys.exit(
                f"counter mismatch: {metric} trace-sum {total} != reported {report[metric]}"
            )
    # A reported nonzero counter with no trace events means lost events —
    # but only for counters we know emit per increment (all of them).
    for metric, value in report.items():
        if metric in last_gauge or metric in sums:
            continue
        if ".last_" in metric or metric.startswith(("cache.", "pool.")):
            continue  # gauges may legitimately be sampled only at report time
        if value != 0:
            sys.exit(f"counter {metric} reported {value} but has no trace events")
    # Gauges: the report re-samples at print time, so the last traced value
    # must not exceed the reported one for monotone gauges.
    for metric, v in last_gauge.items():
        if v > report[metric]:
            sys.exit(f"gauge regressed: {metric} traced {v} > reported {report[metric]}")

    # Structural invariants of the frontier pipeline.
    rc = report["frontier.refine_calls"]
    gd, fd = report["frontier.grid_dispatch"], report["frontier.fused_dispatch"]
    if rc != gd + fd:
        sys.exit(f"refine_calls {rc} != grid {gd} + fused {fd}")
    cand = report["frontier.candidates"]
    parts = (
        report["frontier.count_pruned"]
        + report["frontier.dedup_dropped"]
        + report["frontier.materialized"]
    )
    if cand != parts:
        sys.exit(f"frontier.candidates {cand} != pruned+dropped+materialized {parts}")
    if report["eval.scored"] > 0 and report["eval.batches"] == 0:
        sys.exit("eval.scored > 0 with no batches")

    # Executor dispatch: traffic and degradation imply requests were made.
    ex_requests = report.get("executor.requests", 0)
    for metric in (
        "executor.retries",
        "executor.bytes_tx",
        "executor.bytes_rx",
        "executor.request_ns",
    ):
        if report.get(metric, 0) > 0 and ex_requests == 0:
            sys.exit(f"{metric} > 0 with no executor.requests")
    # A fallback is counted where a request failed (or a load was never
    # attempted after one), so fallbacks without any requests at all means
    # the counters disagree about whether an executor was attached.
    if report.get("executor.fallbacks", 0) > 0 and ex_requests == 0:
        sys.exit("executor.fallbacks > 0 with no executor.requests")

    # Snapshot durability: bytes written imply a timed write, and a timed
    # write implies bytes (the two are bumped by the same save call).
    snap_bytes = report.get("snapshot.bytes", 0)
    snap_write_ns = report.get("snapshot.write_ns", 0)
    if snap_bytes > 0 and snap_write_ns == 0:
        sys.exit("snapshot.bytes > 0 with no snapshot.write_ns")
    if snap_write_ns > 0 and snap_bytes == 0:
        sys.exit("snapshot.write_ns > 0 with no snapshot.bytes")

    print(
        f"trace OK: {n_events} events, {len(sums)} counters reconciled, "
        f"{len(last_gauge)} gauges checked"
    )


if __name__ == "__main__":
    main()
