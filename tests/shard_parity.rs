//! Shard parity: every sharded path must be **bit-identical** to the
//! unsharded one. For random datasets and S ∈ {1, 2, 3, 7}: sharded mask
//! construction merges to exactly the whole-dataset masks, sharded
//! frontier refinement emits exactly the unsharded `ChildBatch`, and full
//! beam / binary-beam / branch-and-bound searches return bit-identical
//! results at 1 and 4 threads. Plus shard-plan edge cases (empty shards,
//! S > rows, non-multiple-of-64 row counts) and the
//! `concat_words`/`words`/`from_words` round-trip regression.

use proptest::prelude::*;
use sisd::core::Condition;
use sisd::data::shard::{shard_members, ShardPlan};
use sisd::data::{BitSet, Column, Dataset, ShardedDataset};
use sisd::frontier::{
    FrontierBuilder, FrontierConfig, MaskMatrix, MaskStore, ParentSpec, ShardedFrontierBuilder,
    ShardedMaskMatrix,
};
use sisd::linalg::Matrix;
use sisd::model::{BackgroundModel, BinaryBackgroundModel};
use sisd::search::{
    binary_beam_search, branch_bound_search, generate_conditions, BeamConfig, BeamSearch,
    BranchBoundConfig, EvalConfig, RefineConfig,
};
use sisd::stats::Xoshiro256pp;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

fn random_mask(rng: &mut Xoshiro256pp, n: usize, density: f64) -> BitSet {
    BitSet::from_fn(n, |_| rng.uniform() < density)
}

/// Random mixed-type dataset: one categorical flag, one numeric column,
/// `dy` continuous targets (with a planted signal on the flag so searches
/// have something to find).
fn random_dataset(seed: u64, n: usize, dy: usize) -> Dataset {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let flag: Vec<bool> = (0..n).map(|_| rng.uniform() < 0.3).collect();
    let num: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
    let mut targets = Matrix::zeros(n, dy);
    for i in 0..n {
        let boost = if flag[i] { 1.5 } else { 0.0 };
        for j in 0..dy {
            targets[(i, j)] = rng.normal() + boost * [1.0, -0.6][j % 2] + 0.3 * num[i];
        }
    }
    Dataset::new(
        "rnd",
        vec!["flag".into(), "num".into()],
        vec![Column::binary(&flag), Column::Numeric(num)],
        (0..dy).map(|j| format!("y{j}")).collect(),
        targets,
    )
}

/// Random 0/1-target dataset for the Bernoulli backend.
fn random_binary_dataset(seed: u64, n: usize) -> Dataset {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let flag: Vec<bool> = (0..n).map(|i| i % 4 == 1).collect();
    let num: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
    let mut targets = Matrix::zeros(n, 2);
    for i in 0..n {
        let boost = if flag[i] { 0.5 } else { 0.0 };
        for j in 0..2 {
            let p = (0.3 + boost * [1.0f64, -0.4][j]).clamp(0.05, 0.95);
            targets[(i, j)] = f64::from(u8::from(rng.bernoulli(p)));
        }
    }
    Dataset::new(
        "rnd-bin",
        vec!["flag".into(), "num".into()],
        vec![Column::binary(&flag), Column::Numeric(num)],
        vec!["s0".into(), "s1".into()],
        targets,
    )
}

/// Slices whole-dataset masks into per-shard matrices.
fn shard_matrices(masks: &[BitSet], plan: &ShardPlan) -> Vec<MaskMatrix> {
    (0..plan.shards())
        .map(|s| {
            MaskMatrix::from_bitsets(plan.shard_len(s), masks.iter().map(|m| m.shard(plan, s)))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sharded mask construction — per-shard condition evaluation over
    /// `ShardedDataset` views — merges to exactly the unsharded matrix.
    #[test]
    fn sharded_mask_construction_matches_unsharded(seed in 0u64..10_000) {
        let n = 20 + (seed as usize * 17) % 300;
        let data = random_dataset(seed, n, 2);
        let conditions: Vec<Condition> = generate_conditions(&data, &RefineConfig::default());
        let dense = MaskMatrix::evaluate(&data, &conditions);
        for s in SHARD_COUNTS {
            let sharded = ShardedMaskMatrix::evaluate(&ShardedDataset::new(&data, s), &conditions);
            prop_assert_eq!(sharded.rows(), dense.rows());
            prop_assert_eq!(sharded.n(), dense.n());
            for j in 0..dense.rows() {
                prop_assert_eq!(sharded.row_bitset(j), dense.row_bitset(j), "s={} row {}", s, j);
                prop_assert_eq!(sharded.row_count(j), dense.row_count(j));
            }
        }
    }

    /// Sharded count-first frontier refinement — per-shard count-only
    /// kernels, filters on shard-summed totals, survivors materialized in
    /// shard order — emits the unsharded `ChildBatch` bit for bit, at 1
    /// and 4 threads and every shard count; and both layouts' count-first
    /// output equals their single-pass (PR 4) reference.
    #[test]
    fn sharded_frontier_matches_unsharded(seed in 0u64..10_000) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x5851_f42d_4c95_7f2d);
        let n = 10 + (seed as usize * 29) % 280;
        let rows = 1 + (seed as usize) % 40;
        let min_support = (seed as usize) % 4;
        let masks: Vec<BitSet> = (0..rows).map(|_| random_mask(&mut rng, n, 0.4)).collect();
        let dense = MaskMatrix::from_bitsets(n, masks.iter().cloned());
        let parent_sets: Vec<BitSet> = (0..4).map(|_| random_mask(&mut rng, n, 0.7)).collect();
        let parents: Vec<ParentSpec<'_>> = parent_sets
            .iter()
            .map(|ext| ParentSpec { ext, max_support: ext.count().saturating_sub(1) })
            .collect();
        let allowed = |p: usize, row: usize| !(p * 5 + row + seed as usize).is_multiple_of(4);
        let dense_builder = FrontierBuilder::new(
            &dense,
            FrontierConfig { min_support, threads: 1, ..FrontierConfig::default() },
        );
        let expect = dense_builder.refine_parents_single_pass(&parents, allowed);
        // Unsharded count-first vs unsharded single-pass.
        let dense_cf = dense_builder.refine_parents(&parents, allowed);
        prop_assert_eq!(dense_cf.len(), expect.len());
        for i in 0..expect.len() {
            prop_assert_eq!(dense_cf.meta(i), expect.meta(i));
            prop_assert_eq!(dense_cf.child_words(i), expect.child_words(i));
        }
        for s in SHARD_COUNTS {
            let plan = ShardPlan::new(n, s);
            let sharded = ShardedMaskMatrix::from_parts(plan.clone(), shard_matrices(&masks, &plan));
            for threads in [1usize, 4] {
                let builder = ShardedFrontierBuilder::new(
                    &sharded,
                    FrontierConfig { min_support, threads, ..FrontierConfig::default() },
                );
                let got = builder.refine_parents(&parents, allowed);
                prop_assert_eq!(got.len(), expect.len(), "s={} t={}", s, threads);
                for i in 0..expect.len() {
                    prop_assert_eq!(got.meta(i), expect.meta(i), "s={} t={}", s, threads);
                    prop_assert_eq!(
                        got.child_words(i),
                        expect.child_words(i),
                        "s={} t={} child {}", s, threads, i
                    );
                }
                // The sharded single-pass (PR 4) reference agrees too.
                let single = builder.refine_parents_single_pass(&parents, allowed);
                prop_assert_eq!(single.len(), expect.len(), "s={} t={}", s, threads);
                for i in 0..expect.len() {
                    prop_assert_eq!(single.meta(i), expect.meta(i), "s={} t={}", s, threads);
                    prop_assert_eq!(single.child_words(i), expect.child_words(i));
                }
            }
        }
    }

    /// Count-first refinement with a keep predicate — first-wins dedup
    /// state and a branch-and-bound-shaped support bound — is bit-identical
    /// between the sharded and unsharded layouts at every shard × thread
    /// combination, and equals the single-pass output post-filtered by the
    /// same predicate.
    #[test]
    fn sharded_refine_with_prune_matches_unsharded(seed in 0u64..10_000) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x1234_5678_9abc_def0);
        let n = 12 + (seed as usize * 23) % 260;
        let rows = 1 + (seed as usize) % 36;
        let min_support = (seed as usize) % 3;
        let bound_floor = 1 + (seed as usize) % 6;
        let masks: Vec<BitSet> = (0..rows).map(|_| random_mask(&mut rng, n, 0.4)).collect();
        let dense = MaskMatrix::from_bitsets(n, masks.iter().cloned());
        let parent_sets: Vec<BitSet> = (0..3).map(|_| random_mask(&mut rng, n, 0.7)).collect();
        let parents: Vec<ParentSpec<'_>> = parent_sets
            .iter()
            .map(|ext| ParentSpec { ext, max_support: ext.count().saturating_sub(1) })
            .collect();
        let allowed = |p: usize, row: usize| !(p * 3 + row + seed as usize).is_multiple_of(6);
        // The keep predicate combines both production shapes: a bound
        // check on the global support (monotone, like B&B's optimistic
        // bound against the incumbent) and stateful first-wins dedup.
        let config = FrontierConfig { min_support, threads: 1, ..FrontierConfig::default() };
        let single = FrontierBuilder::new(&dense, config)
            .refine_parents_single_pass(&parents, allowed);
        let mut seen_ref: std::collections::HashSet<(usize, usize)> = Default::default();
        let expect: Vec<usize> = (0..single.len())
            .filter(|&i| {
                let m = single.meta(i);
                m.support >= bound_floor && seen_ref.insert((m.row, m.support))
            })
            .collect();
        for s in SHARD_COUNTS {
            let plan = ShardPlan::new(n, s);
            let sharded = ShardedMaskMatrix::from_parts(plan.clone(), shard_matrices(&masks, &plan));
            for threads in [1usize, 4] {
                let mut seen: std::collections::HashSet<(usize, usize)> = Default::default();
                let got = ShardedFrontierBuilder::new(
                    &sharded,
                    FrontierConfig { min_support, threads, ..FrontierConfig::default() },
                )
                .refine_with_prune(&parents, allowed, |_, row, support| {
                    support >= bound_floor && seen.insert((row, support))
                });
                prop_assert_eq!(got.len(), expect.len(), "s={} t={}", s, threads);
                for (k, &i) in expect.iter().enumerate() {
                    prop_assert_eq!(got.meta(k), single.meta(i), "s={} t={}", s, threads);
                    prop_assert_eq!(
                        got.child_words(k),
                        single.child_words(i),
                        "s={} t={} child {}", s, threads, k
                    );
                }
            }
        }
    }

    /// Shard slicing and `concat_words` round-trip arbitrary bitsets
    /// exactly, including through the raw `words`/`from_words` surface.
    #[test]
    fn concat_words_round_trips(seed in 0u64..10_000) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let n = (seed as usize * 31) % 400; // includes 0 and non-multiples of 64
        let full = random_mask(&mut rng, n, 0.5);
        // words/from_words round-trip regression.
        let rebuilt = BitSet::from_words(full.words().to_vec(), full.len());
        prop_assert_eq!(&rebuilt, &full);
        for s in SHARD_COUNTS {
            let plan = ShardPlan::new(n, s);
            let parts: Vec<BitSet> = (0..s).map(|k| full.shard(&plan, k)).collect();
            prop_assert_eq!(
                parts.iter().map(BitSet::count).sum::<usize>(),
                full.count()
            );
            let merged = BitSet::concat_words(&parts);
            prop_assert_eq!(&merged, &full, "s={}", s);
            // Membership agrees shard-locally too.
            let chained: Vec<usize> =
                (0..s).flat_map(|k| shard_members(&full, &plan, k)).collect();
            prop_assert_eq!(chained, full.to_indices());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Full Gaussian beam searches are bit-identical between the sharded
    /// and unsharded pipelines at 1 and 4 threads.
    #[test]
    fn beam_search_shard_parity(seed in 0u64..1_000) {
        let n = 80 + (seed as usize * 37) % 200;
        let data = random_dataset(seed, n, 2);
        let model = BackgroundModel::from_empirical(&data).unwrap();
        let base = BeamConfig {
            width: 8,
            max_depth: 2,
            top_k: 30,
            min_coverage: 5,
            ..BeamConfig::default()
        };
        let reference = BeamSearch::new(base.clone()).run(&data, &model);
        for s in SHARD_COUNTS {
            for threads in [1usize, 4] {
                let cfg = BeamConfig {
                    eval: EvalConfig::with_threads(threads).with_shards(s),
                    ..base.clone()
                };
                let got = BeamSearch::new(cfg).run(&data, &model);
                prop_assert_eq!(got.evaluated, reference.evaluated, "s={} t={}", s, threads);
                prop_assert_eq!(got.top.len(), reference.top.len(), "s={} t={}", s, threads);
                for (a, b) in got.top.iter().zip(&reference.top) {
                    prop_assert_eq!(&a.intention, &b.intention, "s={} t={}", s, threads);
                    prop_assert_eq!(&a.extension, &b.extension, "s={} t={}", s, threads);
                    prop_assert_eq!(
                        a.score.si.to_bits(),
                        b.score.si.to_bits(),
                        "s={} t={}: SI must be bit-identical", s, threads
                    );
                    prop_assert_eq!(a.score.ic.to_bits(), b.score.ic.to_bits());
                    for (x, y) in a.observed_mean.iter().zip(&b.observed_mean) {
                        prop_assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
            }
        }
    }

    /// Full Bernoulli (binary-target) beam searches are bit-identical
    /// between the sharded and unsharded pipelines at 1 and 4 threads.
    #[test]
    fn binary_beam_search_shard_parity(seed in 0u64..1_000) {
        let n = 100 + (seed as usize * 41) % 150;
        let data = random_binary_dataset(seed, n);
        let model = BinaryBackgroundModel::from_empirical(&data).unwrap();
        let base = BeamConfig {
            width: 8,
            max_depth: 2,
            top_k: 20,
            min_coverage: 8,
            ..BeamConfig::default()
        };
        let reference = binary_beam_search(&data, &model, &base);
        for s in SHARD_COUNTS {
            for threads in [1usize, 4] {
                let cfg = BeamConfig {
                    eval: EvalConfig::with_threads(threads).with_shards(s),
                    ..base.clone()
                };
                let got = binary_beam_search(&data, &model, &cfg);
                prop_assert_eq!(got.evaluated, reference.evaluated, "s={} t={}", s, threads);
                prop_assert_eq!(got.top.len(), reference.top.len(), "s={} t={}", s, threads);
                for (a, b) in got.top.iter().zip(&reference.top) {
                    prop_assert_eq!(&a.extension, &b.extension, "s={} t={}", s, threads);
                    prop_assert_eq!(
                        a.score.si.to_bits(),
                        b.score.si.to_bits(),
                        "s={} t={}", s, threads
                    );
                }
            }
        }
    }

    /// Branch-and-bound explores the same tree and returns the same
    /// optimum — node counts, prune counts, and SI bits — under sharding
    /// at 1 and 4 threads.
    #[test]
    fn branch_bound_shard_parity(seed in 0u64..1_000) {
        let n = 100 + (seed as usize * 23) % 150;
        let data = {
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let flag: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
            let num: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
            let mut targets = Matrix::zeros(n, 1);
            for i in 0..n {
                let boost = if flag[i] { 2.0 } else { 0.0 };
                targets[(i, 0)] = rng.normal() + boost + 0.5 * num[i];
            }
            Dataset::new(
                "bb",
                vec!["flag".into(), "num".into()],
                vec![Column::binary(&flag), Column::Numeric(num)],
                vec!["y".into()],
                targets,
            )
        };
        let model = BackgroundModel::from_empirical(&data).unwrap();
        let base = BranchBoundConfig {
            max_depth: 2,
            min_coverage: 5,
            ..BranchBoundConfig::default()
        };
        let reference = branch_bound_search(&data, &model, base.clone());
        let best = reference.best.as_ref().expect("optimum found");
        for s in SHARD_COUNTS {
            for threads in [1usize, 4] {
                let cfg = BranchBoundConfig {
                    eval: EvalConfig::with_threads(threads).with_shards(s),
                    ..base.clone()
                };
                let got = branch_bound_search(&data, &model, cfg);
                prop_assert_eq!(got.evaluated, reference.evaluated, "s={} t={}", s, threads);
                prop_assert_eq!(got.pruned, reference.pruned, "s={} t={}", s, threads);
                let gbest = got.best.as_ref().unwrap();
                prop_assert_eq!(&gbest.extension, &best.extension, "s={} t={}", s, threads);
                prop_assert_eq!(
                    gbest.score.si.to_bits(),
                    best.score.si.to_bits(),
                    "s={} t={}", s, threads
                );
            }
        }
    }
}

// ----------------------------------------------------------------------
// Shard-plan edge cases at the integration surface.
// ----------------------------------------------------------------------

#[test]
fn searches_survive_more_shards_than_rows() {
    // n = 40 → a single word; S = 7 leaves six empty shards, and the
    // search must still be bit-identical.
    let data = random_dataset(5, 40, 2);
    let model = BackgroundModel::from_empirical(&data).unwrap();
    let base = BeamConfig {
        width: 5,
        max_depth: 2,
        top_k: 10,
        min_coverage: 3,
        ..BeamConfig::default()
    };
    let reference = BeamSearch::new(base.clone()).run(&data, &model);
    for s in [7usize, 64, 100] {
        let cfg = BeamConfig {
            eval: EvalConfig::default().with_shards(s),
            ..base.clone()
        };
        let got = BeamSearch::new(cfg).run(&data, &model);
        assert_eq!(got.evaluated, reference.evaluated, "s={s}");
        for (a, b) in got.top.iter().zip(&reference.top) {
            assert_eq!(a.extension, b.extension, "s={s}");
            assert_eq!(a.score.si.to_bits(), b.score.si.to_bits(), "s={s}");
        }
    }
}

#[test]
fn mask_store_handles_non_multiple_of_64_rows() {
    // 130 rows = two full words + a 2-row tail; the tail shard must carry
    // the partial word without disturbing parity.
    let data = random_dataset(11, 130, 2);
    let conditions = generate_conditions(&data, &RefineConfig::default());
    let dense = MaskStore::evaluate(&data, &conditions, 1);
    let sharded = MaskStore::evaluate(&data, &conditions, 3);
    assert_eq!(sharded.shards(), 3);
    assert_eq!(dense.rows(), sharded.rows());
    let full = BitSet::full(130);
    let parents = [ParentSpec {
        ext: &full,
        max_support: 129,
    }];
    let cfg = FrontierConfig {
        min_support: 1,
        threads: 1,
        ..FrontierConfig::default()
    };
    let a = dense.refine_parents(cfg, &parents, |_, _| true);
    let b = sharded.refine_parents(cfg, &parents, |_, _| true);
    assert_eq!(a.len(), b.len());
    for i in 0..a.len() {
        assert_eq!(a.meta(i), b.meta(i));
        assert_eq!(a.child_words(i), b.child_words(i));
    }
}
