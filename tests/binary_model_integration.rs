//! End-to-end and property tests for the binary-target extension (§V):
//! Bernoulli MaxEnt model + binary beam search, including a run on the
//! full-size mammal simulacrum.

use proptest::prelude::*;
use sisd::data::datasets::mammals_synthetic;
use sisd::data::{BitSet, Column, Dataset};
use sisd::linalg::Matrix;
use sisd::model::BinaryBackgroundModel;
use sisd::search::{binary_beam_search, binary_step, BeamConfig};
use sisd::stats::Xoshiro256pp;

prop_compose! {
    fn probs()(v in prop::collection::vec(0.02f64..0.98, 4)) -> Vec<f64> { v }
}

prop_compose! {
    fn extension()(bits in prop::collection::vec(any::<bool>(), 30)) -> BitSet {
        let mut ext = BitSet::from_indices(
            30,
            bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i),
        );
        if ext.count() == 0 {
            ext.insert(3);
        }
        ext
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn binary_assimilation_enforces_means(prior in probs(), target in probs(), ext in extension()) {
        let mut model = BinaryBackgroundModel::new(30, prior.clone()).unwrap();
        model.assimilate_location(&ext, &target).unwrap();
        let stats = model.location_stats(&ext).unwrap();
        for (m, t) in stats.mean.iter().zip(&target) {
            prop_assert!((m - t).abs() < 1e-6, "mean {m} target {t}");
        }
        // Complement untouched.
        let rest = ext.complement();
        if rest.count() > 0 {
            let stats_rest = model.location_stats(&rest).unwrap();
            for (m, p) in stats_rest.mean.iter().zip(&prior) {
                prop_assert!((m - p).abs() < 1e-9);
            }
        }
        // Probabilities stay inside (0, 1).
        for cell in model.cells() {
            for &p in &cell.p {
                prop_assert!(p > 0.0 && p < 1.0);
            }
        }
    }

    #[test]
    fn binary_ic_is_minimized_at_the_expectation(prior in probs(), ext in extension()) {
        let model = BinaryBackgroundModel::new(30, prior).unwrap();
        let stats = model.location_stats(&ext).unwrap();
        let at_mean = model.location_ic(&ext, &stats.mean).unwrap();
        // Any displaced observation is more surprising.
        let displaced: Vec<f64> = stats.mean.iter().map(|m| (m + 0.3).min(0.99)).collect();
        let away = model.location_ic(&ext, &displaced).unwrap();
        prop_assert!(away >= at_mean - 1e-9);
    }
}

#[test]
fn binary_iterations_on_the_mammal_scale_are_non_redundant() {
    let (data, _) = mammals_synthetic(2018);
    let mut model = BinaryBackgroundModel::from_empirical(&data).unwrap();
    let cfg = BeamConfig {
        width: 8,
        max_depth: 1,
        top_k: 10,
        min_coverage: 100,
        ..BeamConfig::default()
    };
    let mut seen = Vec::new();
    let mut last_si = f64::INFINITY;
    for _ in 0..3 {
        let p = binary_step(&data, &mut model, &cfg).expect("pattern found");
        assert!(
            seen.iter().all(|e: &BitSet| *e != p.extension),
            "repeated extension"
        );
        // SI of successive top patterns is non-increasing up to search
        // noise: the most informative pattern goes first.
        assert!(p.score.si <= last_si * 1.05 + 1.0, "SI went up sharply");
        last_si = p.score.si;
        seen.push(p.extension);
    }
    assert!(model.n_cells() >= 3);
}

#[test]
fn gaussian_and_binary_models_agree_on_the_top_driver() {
    // On a planted single-driver binary dataset both scoring models should
    // select the same describing attribute.
    let mut rng = Xoshiro256pp::seed_from_u64(5);
    let n = 400;
    let flag: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
    let mut targets = Matrix::zeros(n, 2);
    for i in 0..n {
        let p0 = if flag[i] { 0.9 } else { 0.2 };
        let p1 = if flag[i] { 0.1 } else { 0.6 };
        targets[(i, 0)] = f64::from(u8::from(rng.bernoulli(p0)));
        targets[(i, 1)] = f64::from(u8::from(rng.bernoulli(p1)));
    }
    let data = Dataset::new(
        "agree",
        vec!["flag".into(), "noise".into()],
        vec![
            Column::binary(&flag),
            Column::Numeric((0..n).map(|_| rng.uniform()).collect()),
        ],
        vec!["a".into(), "b".into()],
        targets,
    );
    let cfg = BeamConfig {
        width: 10,
        max_depth: 1,
        top_k: 5,
        min_coverage: 20,
        ..BeamConfig::default()
    };

    let bin_model = BinaryBackgroundModel::from_empirical(&data).unwrap();
    let bin_best = binary_beam_search(&data, &bin_model, &cfg)
        .best()
        .unwrap()
        .clone();

    let gauss = sisd::model::BackgroundModel::from_empirical(&data).unwrap();
    let gauss_result = sisd::search::BeamSearch::new(cfg).run(&data, &gauss);
    let gauss_best = gauss_result.best().unwrap();

    assert_eq!(
        bin_best.intention.conditions()[0].attr,
        gauss_best.intention.conditions()[0].attr,
        "models disagree on the driver"
    );
}
