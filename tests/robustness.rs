//! Failure-injection and degenerate-input tests: the library must reject or
//! gracefully survive the pathological datasets a downstream user will
//! eventually feed it.

use sisd::core::{location_si, DlParams, Intention};
use sisd::data::{BitSet, Column, Dataset};
use sisd::linalg::Matrix;
use sisd::model::{BackgroundModel, ModelError};
use sisd::search::{BeamConfig, BeamSearch, Miner, MinerConfig, SphereConfig};

fn tiny_config() -> MinerConfig {
    MinerConfig {
        beam: BeamConfig {
            width: 5,
            max_depth: 2,
            top_k: 10,
            min_coverage: 2,
            ..BeamConfig::default()
        },
        sphere: SphereConfig {
            random_starts: 2,
            ..SphereConfig::default()
        },
        two_sparse_spread: false,
        refit_tol: 1e-8,
        refit_max_cycles: 50,
    }
}

/// Constant targets: the empirical covariance is singular; the model layer
/// must jitter rather than crash, and searches must not panic.
#[test]
fn constant_targets_survive_via_jitter() {
    let n = 40;
    let flags: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
    let data = Dataset::new(
        "const",
        vec!["f".into()],
        vec![Column::binary(&flags)],
        vec!["y".into()],
        Matrix::from_vec(n, 1, vec![3.25; n]),
    );
    let model = BackgroundModel::from_empirical(&data).expect("jittered prior");
    let result = BeamSearch::new(tiny_config().beam).run(&data, &model);
    // All subgroup means equal the global constant → nothing genuinely
    // interesting, but no panics and finite scores.
    for p in &result.top {
        assert!(p.score.si.is_finite());
    }
}

/// A target column with zero variance inside one attribute but variation in
/// the other: dense-path covariances stay factorable.
#[test]
fn mixed_degenerate_targets() {
    let n = 30;
    let mut targets = Matrix::zeros(n, 2);
    for i in 0..n {
        targets[(i, 0)] = 1.0; // constant
        targets[(i, 1)] = (i as f64 * 0.37).sin();
    }
    let flags: Vec<bool> = (0..n).map(|i| i < 10).collect();
    let data = Dataset::new(
        "半const",
        vec!["f".into()],
        vec![Column::binary(&flags)],
        vec!["y0".into(), "y1".into()],
        targets,
    );
    let mut miner = Miner::from_empirical(data, tiny_config()).expect("model fits");
    // Location iteration must work; spread may be degenerate but must not
    // panic (the spread solve on a zero-variance direction errors cleanly).
    let it = miner.step_location().expect("update ok");
    assert!(it.is_some());
}

/// Extremely small datasets.
#[test]
fn minimal_row_counts() {
    for n in [2usize, 3, 5] {
        let flags: Vec<bool> = (0..n).map(|i| i == 0).collect();
        let mut targets = Matrix::zeros(n, 1);
        for i in 0..n {
            targets[(i, 0)] = i as f64;
        }
        let data = Dataset::new(
            "tiny",
            vec!["f".into()],
            vec![Column::binary(&flags)],
            vec!["y".into()],
            targets,
        );
        let model = BackgroundModel::from_empirical(&data).expect("model");
        let cfg = BeamConfig {
            width: 3,
            max_depth: 1,
            top_k: 5,
            min_coverage: 1,
            max_coverage_fraction: 1.0,
            ..BeamConfig::default()
        };
        let result = BeamSearch::new(cfg).run(&data, &model);
        for p in &result.top {
            assert!(p.score.si.is_finite());
        }
    }
}

/// Dimension mismatches are rejected with typed errors, not panics.
#[test]
fn dimension_errors_are_typed() {
    let mut model = BackgroundModel::new(10, vec![0.0, 0.0], Matrix::identity(2)).unwrap();
    let ext = BitSet::from_indices(10, [0, 1]);
    assert!(matches!(
        model.assimilate_location(&ext, vec![1.0]),
        Err(ModelError::Dimension {
            expected: 2,
            got: 1
        })
    ));
    assert!(matches!(
        model.assimilate_spread(&ext, vec![1.0], vec![0.0, 0.0], 1.0),
        Err(ModelError::Dimension { .. })
    ));
    assert!(matches!(
        model.location_stats(&BitSet::empty(10), &[0.0, 0.0]),
        Err(ModelError::EmptyExtension)
    ));
}

/// Repeated assimilation of the *same* pattern is idempotent after the
/// first application (the constraint is already satisfied).
#[test]
fn repeated_assimilation_is_stable() {
    let n = 30;
    let mut targets = Matrix::zeros(n, 2);
    for i in 0..n {
        targets[(i, 0)] = (i as f64).sin();
        targets[(i, 1)] = (i as f64).cos();
    }
    let flags: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
    let data = Dataset::new(
        "rep",
        vec!["f".into()],
        vec![Column::binary(&flags)],
        vec!["y0".into(), "y1".into()],
        targets,
    );
    let mut model = BackgroundModel::from_empirical(&data).unwrap();
    let ext = BitSet::from_fn(n, |i| i % 3 == 0);
    let mean = data.target_mean(&ext);
    model.assimilate_location(&ext, mean.clone()).unwrap();
    let mu_after_first: Vec<f64> = model.row_mean(0).to_vec();
    for _ in 0..5 {
        model.assimilate_location(&ext, mean.clone()).unwrap();
        let _ = model.refit(1e-10, 50).unwrap();
    }
    for (a, b) in model.row_mean(0).iter().zip(&mu_after_first) {
        assert!((a - b).abs() < 1e-9, "means drifted under re-assimilation");
    }
    assert!(model.max_violation() < 1e-9);
}

/// An extreme spread demand (variance → 0) leaves the model usable: the
/// SI of follow-up patterns stays finite.
#[test]
fn extreme_spread_shrink_keeps_model_usable() {
    let n = 40;
    let mut targets = Matrix::zeros(n, 2);
    for i in 0..n {
        targets[(i, 0)] = (i as f64 * 1.3).sin();
        targets[(i, 1)] = (i as f64 * 0.7).cos();
    }
    let flags: Vec<bool> = (0..n).map(|i| i < 20).collect();
    let data = Dataset::new(
        "shrink",
        vec!["f".into()],
        vec![Column::binary(&flags)],
        vec!["y0".into(), "y1".into()],
        targets,
    );
    let mut model = BackgroundModel::from_empirical(&data).unwrap();
    let ext = BitSet::from_indices(n, 0..20);
    let center = data.target_mean(&ext);
    let mut w = vec![1.0, 1.0];
    sisd::linalg::normalize(&mut w);
    model
        .assimilate_spread(&ext, w, center, 1e-10)
        .expect("extreme shrink accepted");
    // Scoring any other subgroup still works.
    let other = BitSet::from_indices(n, 20..40);
    let intent = Intention::empty();
    let score = location_si(&model, &data, &intent, &other, &DlParams::default()).unwrap();
    assert!(score.si.is_finite());
}

/// Unicode attribute names and labels flow through descriptions unharmed.
#[test]
fn unicode_names_roundtrip() {
    let data = Dataset::new(
        "unicode",
        vec!["Fläche_km²".into()],
        vec![Column::categorical_from_strs(&["groß", "klein", "groß"])],
        vec!["Bevölkerung".into()],
        Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]),
    );
    let intent = Intention::empty().with(sisd::core::Condition {
        attr: 0,
        op: sisd::core::ConditionOp::Eq(0),
    });
    let described = intent.describe(&data);
    assert!(described.contains("Fläche_km²"));
    assert!(described.contains("groß"));
    assert_eq!(intent.evaluate(&data).to_indices(), vec![0, 2]);
}
