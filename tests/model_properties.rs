//! Property-based tests of the background model's update machinery:
//! for arbitrary extensions, targets, and directions, the I-projections
//! must enforce their constraints exactly, preserve the Gaussian form
//! (positive-definite covariances), leave untouched rows alone, and the
//! cyclic refit must converge for overlapping constraint sets.

use proptest::prelude::*;
use sisd::data::BitSet;
use sisd::linalg::{Cholesky, Matrix};
use sisd::model::BackgroundModel;

const N: usize = 24;
const DY: usize = 3;

fn base_model() -> BackgroundModel {
    let mu = vec![0.5, -1.0, 2.0];
    let sigma = Matrix::from_rows(&[&[2.0, 0.4, 0.1], &[0.4, 1.5, -0.3], &[0.1, -0.3, 1.0]]);
    BackgroundModel::new(N, mu, sigma).unwrap()
}

prop_compose! {
    /// Non-empty extension over [0, N).
    fn extension()(bits in prop::collection::vec(any::<bool>(), N)) -> BitSet {
        let mut ext = BitSet::from_indices(N, bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i));
        if ext.count() == 0 {
            ext.insert(0);
        }
        ext
    }
}

prop_compose! {
    fn target_vec()(v in prop::collection::vec(-5.0f64..5.0, DY)) -> Vec<f64> { v }
}

prop_compose! {
    /// Bounded mean shift for warm/cold parity sessions.
    fn delta_vec()(v in prop::collection::vec(-0.75f64..0.75, DY)) -> Vec<f64> { v }
}

prop_compose! {
    fn direction()(v in prop::collection::vec(-1.0f64..1.0, DY)) -> Vec<f64> {
        let mut w = v;
        if sisd::linalg::normalize(&mut w) == 0.0 {
            w = vec![1.0, 0.0, 0.0];
        }
        w
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn location_update_enforces_mean_exactly(ext in extension(), target in target_vec()) {
        let mut model = base_model();
        model.assimilate_location(&ext, target.clone()).unwrap();
        // E[f_I] over the extension equals the target.
        let mut mean = vec![0.0; DY];
        for i in ext.iter() {
            sisd::linalg::add_assign(&mut mean, model.row_mean(i));
        }
        sisd::linalg::scale(1.0 / ext.count() as f64, &mut mean);
        for (m, t) in mean.iter().zip(&target) {
            prop_assert!((m - t).abs() < 1e-9);
        }
        // Rows outside the extension are untouched.
        for i in 0..N {
            if !ext.contains(i) {
                prop_assert_eq!(model.row_mean(i), &[0.5, -1.0, 2.0]);
            }
        }
    }

    #[test]
    fn spread_update_enforces_variance_exactly(
        ext in extension(),
        w in direction(),
        center in target_vec(),
        value in 0.05f64..10.0,
    ) {
        let mut model = base_model();
        model.assimilate_spread(&ext, w.clone(), center.clone(), value).unwrap();
        let st = model.spread_stats(&ext, &w, &center).unwrap();
        prop_assert!(
            (st.expected - value).abs() < 1e-6 * value.max(1.0),
            "E[g] = {} instead of {}", st.expected, value
        );
        // All covariances stay positive definite.
        for cell in model.cells() {
            prop_assert!(Cholesky::new_with_jitter(&cell.sigma, 4).is_ok());
        }
    }

    #[test]
    fn overlapping_location_constraints_converge(
        ext_a in extension(),
        ext_b in extension(),
        ta in target_vec(),
        tb in target_vec(),
    ) {
        let mut model = base_model();
        model.assimilate_location(&ext_a, ta).unwrap();
        model.assimilate_location(&ext_b, tb).unwrap();
        let _ = model.refit(1e-9, 2000).unwrap();
        prop_assert!(
            model.max_violation() < 1e-7,
            "violation {} after refit", model.max_violation()
        );
    }

    #[test]
    fn updates_increase_divergence_from_prior(ext in extension(), target in target_vec()) {
        let model = base_model();
        let mut updated = model.clone();
        updated.assimilate_location(&ext, target.clone()).unwrap();
        let kl = updated.kl_divergence_from(&model);
        prop_assert!(kl >= -1e-9, "negative KL {kl}");
        // If the target differs from the prior mean, KL is strictly positive.
        let shift: f64 = target.iter().zip([0.5, -1.0, 2.0]).map(|(a, b)| (a - b).abs()).sum();
        if shift > 1e-6 {
            prop_assert!(kl > 0.0);
        }
    }

    #[test]
    fn cells_always_partition_rows(ext_a in extension(), ext_b in extension()) {
        let mut model = base_model();
        model.assimilate_location(&ext_a, vec![0.0; DY]).unwrap();
        model.assimilate_location(&ext_b, vec![1.0; DY]).unwrap();
        let mut seen = BitSet::empty(N);
        let mut total = 0;
        for cell in model.cells() {
            prop_assert!(seen.is_disjoint(&cell.ext), "overlapping cells");
            seen = seen.or(&cell.ext);
            total += cell.count;
        }
        prop_assert_eq!(total, N);
        prop_assert_eq!(seen.count(), N);
    }

    #[test]
    fn warm_refit_agrees_with_cold_replay(
        ext_a in extension(),
        ext_b in extension(),
        ext_c in extension(),
        delta_a in delta_vec(),
        delta_b in delta_vec(),
        delta_c in delta_vec(),
        probe in extension(),
        observed in target_vec(),
    ) {
        // Warm path: the session as users run it — assimilate, re-converge
        // incrementally (cached memberships, warm factors, accumulated
        // duals). Targets are bounded perturbations of the current
        // subgroup mean — the shape of real assimilations (empirical
        // subgroup means), where cyclic I-projection converges; wildly
        // conflicting targets on near-identical extensions can stall both
        // paths short of tolerance, where no agreement is claimed.
        let mut warm = base_model();
        for (ext, delta) in [(&ext_a, &delta_a), (&ext_b, &delta_b), (&ext_c, &delta_c)] {
            let mf = ext.count() as f64;
            let mut target = vec![0.0; DY];
            for i in ext.iter() {
                sisd::linalg::add_assign(&mut target, warm.row_mean(i));
            }
            sisd::linalg::scale(1.0 / mf, &mut target);
            sisd::linalg::add_assign(&mut target, delta);
            warm.assimilate_location(ext, target).unwrap();
            let _ = warm.refit(1e-10, 400).unwrap();
        }
        if warm.max_violation() > 1e-10 {
            return Ok(()); // stalled short of tolerance: claim out of scope
        }
        // Cold oracle: replay the same constraint history from the prior
        // with every bit of warm-start state zeroed.
        let mut cold = warm.clone();
        let _ = cold.refit_cold(1e-10, 400).unwrap();
        if cold.max_violation() > 1e-10 {
            return Ok(());
        }
        // Both converge to the unique I-projection: row parameters and
        // candidate scores agree within the documented tolerance.
        let tol = sisd::model::WARM_COLD_SCORE_TOL;
        for i in 0..N {
            for (a, b) in warm.row_mean(i).iter().zip(cold.row_mean(i)) {
                prop_assert!((a - b).abs() <= tol, "row {} mean: {} vs {}", i, a, b);
            }
        }
        let sw = warm.location_stats(&probe, &observed).unwrap();
        let sc = cold.location_stats(&probe, &observed).unwrap();
        prop_assert!((sw.mahalanobis - sc.mahalanobis).abs() <= tol,
            "probe mahalanobis: {} vs {}", sw.mahalanobis, sc.mahalanobis);
        prop_assert!((sw.log_det_cov - sc.log_det_cov).abs() <= tol,
            "probe log|Cov|: {} vs {}", sw.log_det_cov, sc.log_det_cov);
    }

    #[test]
    fn location_stats_consistent_with_row_params(ext in extension(), observed in target_vec()) {
        let mut model = base_model();
        // Perturb the model a bit first so the test is not trivial.
        let half = BitSet::from_indices(N, 0..N / 2);
        model.assimilate_location(&half, vec![1.0, 1.0, 1.0]).unwrap();

        let stats = model.location_stats(&ext, &observed).unwrap();
        // Recompute the mean directly from row parameters.
        let mut mean = vec![0.0; DY];
        for i in ext.iter() {
            sisd::linalg::add_assign(&mut mean, model.row_mean(i));
        }
        sisd::linalg::scale(1.0 / ext.count() as f64, &mut mean);
        for (a, b) in stats.mean.iter().zip(&mean) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        prop_assert!(stats.mahalanobis >= -1e-12);
        prop_assert!(stats.log_det_cov.is_finite());
    }
}
