//! Shard-executor parity and fault tolerance: every `sisd-exec` backend
//! (in-process codec round-trip, persistent worker processes, loopback
//! TCP) must leave search results **bit-identical** to the plain local
//! pipeline at threads {1, 4} × shards {1, 3, 7} — and must keep them
//! bit-identical when the backend dies mid-search (killed worker, rogue
//! server speaking garbage), degrading to local kernels with the
//! fallback visible in the `SearchReport` instead of failing or hanging.

use proptest::prelude::*;
use sisd::data::{Column, Dataset};
use sisd::exec::{
    default_worker_path, InProcessExecutor, ProcessPoolConfig, ProcessPoolExecutor, SocketConfig,
    SocketExecutor,
};
use sisd::frontier::ExecHandle;
use sisd::linalg::Matrix;
use sisd::model::BackgroundModel;
use sisd::obs::{Metric, NullSink, Obs, ObsHandle};
use sisd::search::{BeamConfig, BeamResult, BeamSearch, EvalConfig};
use sisd::stats::Xoshiro256pp;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

const SHARD_COUNTS: [usize; 3] = [1, 3, 7];
const THREAD_COUNTS: [usize; 2] = [1, 4];

/// Random mixed-type dataset with a planted signal (same fixture shape as
/// `tests/shard_parity.rs`).
fn random_dataset(seed: u64, n: usize, dy: usize) -> Dataset {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let flag: Vec<bool> = (0..n).map(|_| rng.uniform() < 0.3).collect();
    let num: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
    let mut targets = Matrix::zeros(n, dy);
    for i in 0..n {
        let boost = if flag[i] { 1.5 } else { 0.0 };
        for j in 0..dy {
            targets[(i, j)] = rng.normal() + boost * [1.0, -0.6][j % 2] + 0.3 * num[i];
        }
    }
    Dataset::new(
        "rnd",
        vec!["flag".into(), "num".into()],
        vec![Column::binary(&flag), Column::Numeric(num)],
        (0..dy).map(|j| format!("y{j}")).collect(),
        targets,
    )
}

fn base_config() -> BeamConfig {
    BeamConfig {
        width: 6,
        max_depth: 2,
        top_k: 20,
        min_coverage: 5,
        ..BeamConfig::default()
    }
}

/// Asserts two beam results are bit-identical: same candidate count, same
/// patterns, same extensions, same SI/IC bits.
fn assert_bit_identical(got: &BeamResult, reference: &BeamResult, label: &str) {
    assert_eq!(got.evaluated, reference.evaluated, "{label}: evaluated");
    assert_eq!(got.top.len(), reference.top.len(), "{label}: top len");
    for (a, b) in got.top.iter().zip(&reference.top) {
        assert_eq!(a.intention, b.intention, "{label}: intention");
        assert_eq!(a.extension, b.extension, "{label}: extension");
        assert_eq!(a.score.si.to_bits(), b.score.si.to_bits(), "{label}: si");
        assert_eq!(a.score.ic.to_bits(), b.score.ic.to_bits(), "{label}: ic");
        for (x, y) in a.observed_mean.iter().zip(&b.observed_mean) {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: mean");
        }
    }
}

/// Resolves the `sisd-exec-worker` binary, building it if this test ran
/// without a preceding workspace build (`cargo test --test
/// executor_parity` only auto-builds the umbrella package's own bins).
fn ensure_worker() -> std::path::PathBuf {
    let worker = default_worker_path();
    if worker.is_file() {
        return worker;
    }
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let mut cmd = std::process::Command::new(cargo);
    cmd.args(["build", "-p", "sisd-exec", "--bin", "sisd-exec-worker"]);
    if !cfg!(debug_assertions) {
        cmd.arg("--release");
    }
    let status = cmd
        .status()
        .expect("spawn cargo to build the worker binary");
    assert!(status.success(), "building sisd-exec-worker failed");
    assert!(
        worker.is_file(),
        "worker binary still missing at {}",
        worker.display()
    );
    worker
}

/// The shared in-process backend (leaked once; worker state accumulates
/// across cases, which is exactly the persistent-executor deployment
/// shape).
fn inprocess_handle() -> ExecHandle {
    static H: OnceLock<ExecHandle> = OnceLock::new();
    *H.get_or_init(|| InProcessExecutor::leaked(ObsHandle::disabled()))
}

/// The shared process-pool backend: two real `sisd-exec-worker` child
/// processes fed over pipes.
fn procpool_handle() -> ExecHandle {
    static H: OnceLock<ExecHandle> = OnceLock::new();
    *H.get_or_init(|| {
        ensure_worker();
        ProcessPoolExecutor::leaked(
            ProcessPoolConfig {
                workers: 2,
                ..ProcessPoolConfig::default()
            },
            ObsHandle::disabled(),
        )
    })
}

/// The shared socket backend: a loopback TCP server in this process.
fn socket_handle() -> ExecHandle {
    static H: OnceLock<ExecHandle> = OnceLock::new();
    *H.get_or_init(|| {
        let addr = sisd::exec::spawn_loopback_server().expect("loopback server");
        SocketExecutor::leaked(
            addr.to_string(),
            SocketConfig::default(),
            ObsHandle::disabled(),
        )
    })
}

fn backends() -> [(&'static str, ExecHandle); 4] {
    [
        ("disabled", ExecHandle::disabled()),
        ("inprocess", inprocess_handle()),
        ("procpool", procpool_handle()),
        ("socket", socket_handle()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Full Gaussian beam searches are bit-identical across every
    /// executor backend at threads {1, 4} × shards {1, 3, 7}.
    #[test]
    fn beam_search_backend_parity(seed in 0u64..500) {
        let n = 80 + (seed as usize * 37) % 120;
        let data = random_dataset(seed, n, 2);
        let model = BackgroundModel::from_empirical(&data).unwrap();
        let base = base_config();
        let reference = BeamSearch::new(base.clone()).run(&data, &model);
        for (name, exec) in backends() {
            for s in SHARD_COUNTS {
                for threads in THREAD_COUNTS {
                    let cfg = BeamConfig {
                        eval: EvalConfig::with_threads(threads)
                            .with_shards(s)
                            .with_executor(exec),
                        ..base.clone()
                    };
                    let got = BeamSearch::new(cfg).run(&data, &model);
                    assert_bit_identical(
                        &got,
                        &reference,
                        &format!("backend={name} s={s} t={threads}"),
                    );
                }
            }
        }
    }
}

/// Executor traffic is visible: a sharded search through the in-process
/// backend reports requests and bytes in the `SearchReport`.
#[test]
fn executor_traffic_lands_in_search_report() {
    let obs = Obs::leaked(Box::new(NullSink));
    let exec = InProcessExecutor::leaked(obs);
    let data = random_dataset(17, 160, 2);
    let model = BackgroundModel::from_empirical(&data).unwrap();
    let cfg = BeamConfig {
        eval: EvalConfig::with_threads(1)
            .with_shards(3)
            .with_obs(obs)
            .with_executor(exec),
        ..base_config()
    };
    let reference = BeamSearch::new(base_config()).run(&data, &model);
    let got = BeamSearch::new(cfg).run(&data, &model);
    assert_bit_identical(&got, &reference, "inprocess traffic");
    let report = obs.report().expect("obs enabled");
    assert!(report.get(Metric::ExecutorRequests) > 0, "{report}");
    assert!(report.get(Metric::ExecutorBytesTx) > 0, "{report}");
    assert!(report.get(Metric::ExecutorBytesRx) > 0, "{report}");
    assert_eq!(report.get(Metric::ExecutorFallbacks), 0, "{report}");
    let rendered = format!("{report}");
    assert!(rendered.contains("executor:"), "{rendered}");
}

/// Killing every pool worker mid-run (respawn disabled) must not change a
/// single result bit: the search completes on local-kernel fallbacks and
/// the degradation is visible in the `SearchReport`.
#[test]
fn killed_worker_degrades_to_bit_identical_fallback() {
    ensure_worker();
    let obs = Obs::leaked(Box::new(NullSink));
    let pool: &'static ProcessPoolExecutor = Box::leak(Box::new(ProcessPoolExecutor::new(
        ProcessPoolConfig {
            workers: 1,
            retries: 0,
            respawn: false,
            ..ProcessPoolConfig::default()
        },
        obs,
    )));
    let exec = ExecHandle::to(pool);
    let data = random_dataset(3, 150, 2);
    let model = BackgroundModel::from_empirical(&data).unwrap();
    let base = base_config();
    let reference = BeamSearch::new(base.clone()).run(&data, &model);
    let cfg = BeamConfig {
        eval: EvalConfig::with_threads(1)
            .with_shards(3)
            .with_obs(obs)
            .with_executor(exec),
        ..base
    };

    let healthy = BeamSearch::new(cfg.clone()).run(&data, &model);
    assert_bit_identical(&healthy, &reference, "procpool healthy");
    let before = obs.report().expect("obs enabled");
    assert_eq!(before.get(Metric::ExecutorFallbacks), 0, "{before}");

    pool.kill_workers();
    let degraded = BeamSearch::new(cfg).run(&data, &model);
    assert_bit_identical(&degraded, &reference, "procpool after kill");
    let report = obs.report().expect("obs enabled");
    assert!(
        report.get(Metric::ExecutorFallbacks) >= 1,
        "fallbacks must be visible in the report: {report}"
    );
    let rendered = format!("{report}");
    assert!(rendered.contains("fallback"), "{rendered}");
}

/// A server speaking garbage — oversized length prefixes, truncated
/// frames, dropped connections — yields clean errors bounded by the
/// socket timeout (never a hang), and the search it backs still finishes
/// bit-identical on fallbacks.
#[test]
fn malformed_socket_frames_fail_cleanly_without_hanging() {
    let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind rogue server");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for (k, stream) in listener.incoming().flatten().enumerate() {
            let mut stream = stream;
            let mut buf = [0u8; 4096];
            let _ = stream.read(&mut buf);
            if k % 2 == 0 {
                // Length prefix far beyond MAX_FRAME_BYTES.
                let _ = stream.write_all(&[0xff, 0xff, 0xff, 0x7f, 31]);
            } else {
                // Valid-looking prefix announcing 64 payload bytes, then
                // the connection closes after 2 — a truncated frame.
                let _ = stream.write_all(&[64, 0, 0, 0, 17, 9]);
            }
            // Drop: the client sees EOF / a malformed frame, never data.
        }
    });
    let obs = Obs::leaked(Box::new(NullSink));
    let timeout = Duration::from_millis(500);
    let exec = SocketExecutor::leaked(
        addr.to_string(),
        SocketConfig {
            retries: 1,
            timeout,
        },
        obs,
    );

    // Direct request: a clean SisdError, in bounded time.
    let t = Instant::now();
    let err = exec
        .get()
        .expect("handle enabled")
        .and_count(&[1, 2], &[3, 4])
        .expect_err("garbage server must not produce a count");
    assert!(
        t.elapsed() < timeout * 8,
        "error must arrive within the timeout budget, took {:?}",
        t.elapsed()
    );
    assert!(err.to_string().starts_with("executor:"), "{err}");

    // End-to-end: the search degrades to local kernels, bit-identically.
    let data = random_dataset(29, 120, 2);
    let model = BackgroundModel::from_empirical(&data).unwrap();
    let base = base_config();
    let reference = BeamSearch::new(base.clone()).run(&data, &model);
    let cfg = BeamConfig {
        eval: EvalConfig::with_threads(1)
            .with_shards(3)
            .with_obs(obs)
            .with_executor(exec),
        ..base
    };
    let got = BeamSearch::new(cfg).run(&data, &model);
    assert_bit_identical(&got, &reference, "rogue socket");
    let report = obs.report().expect("obs enabled");
    assert!(report.get(Metric::ExecutorFallbacks) >= 1, "{report}");
    assert!(report.get(Metric::ExecutorRetries) >= 1, "{report}");
}
