//! Frontier parity: the batched `sisd-frontier` kernels and builder must be
//! **identical** to the per-candidate `BitSet::and`/`count` loop they
//! replaced — same children, same order, same words — across random masks,
//! lengths crossing word boundaries, and thread counts; and the searches
//! built on them must return bit-identical results to the pre-refactor
//! serial generation path at 1 and 4 threads.

use proptest::prelude::*;
use sisd::core::{ConditionOp, Intention, LocationPattern};
use sisd::data::{kernels, BitSet, Column, Dataset};
use sisd::frontier::{dedup_in_order, FrontierBuilder, FrontierConfig, MaskMatrix, ParentSpec};
use sisd::linalg::Matrix;
use sisd::model::BackgroundModel;
use sisd::search::{
    branch_bound_search, generate_conditions, BeamConfig, BeamSearch, BranchBoundConfig, Candidate,
    EvalConfig, Evaluator,
};
use sisd::stats::Xoshiro256pp;
use sisd_par::PoolHandle;
use std::collections::HashSet;

fn random_mask(rng: &mut Xoshiro256pp, n: usize, density: f64) -> BitSet {
    BitSet::from_fn(n, |_| rng.uniform() < density)
}

/// The serial per-candidate reference for refinement: nested loops over
/// parents and masks, one `BitSet::and` + `count` per pair, identical
/// filters — what the search code did before this subsystem existed.
fn reference_refine(
    masks: &[BitSet],
    parents: &[(&BitSet, usize)],
    allowed: impl Fn(usize, usize) -> bool,
    min_support: usize,
) -> Vec<(usize, usize, usize, BitSet)> {
    let mut out = Vec::new();
    for (p, &(ext, max_support)) in parents.iter().enumerate() {
        for (row, mask) in masks.iter().enumerate() {
            if !allowed(p, row) {
                continue;
            }
            let child = ext.and(mask);
            let support = child.count();
            if support >= min_support && support <= max_support {
                out.push((p, row, support, child));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `and_count_many` over the packed arena equals one
    /// `BitSet::and().count()` per row.
    #[test]
    fn and_count_many_matches_per_candidate_counts(seed in 0u64..10_000) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        // Lengths deliberately straddle word boundaries.
        let n = 1 + (seed as usize * 37) % 310;
        let rows = 1 + (seed as usize) % 40;
        let masks: Vec<BitSet> = (0..rows).map(|_| random_mask(&mut rng, n, 0.35)).collect();
        let matrix = MaskMatrix::from_bitsets(n, masks.iter().cloned());
        let parent = random_mask(&mut rng, n, 0.6);
        let mut counts = vec![0usize; rows];
        matrix.and_count_block(&parent, 0, rows, &mut counts);
        for (row, mask) in masks.iter().enumerate() {
            prop_assert_eq!(counts[row], parent.and(mask).count());
            prop_assert_eq!(
                kernels::and_count(parent.words(), mask.words()),
                parent.intersection_count(mask)
            );
        }
    }

    /// The count-first builder's children — order, supports, and extension
    /// words — are identical to the serial per-candidate loop **and** to
    /// the single-pass (PR 4) builder at every thread count.
    #[test]
    fn refine_parents_matches_per_candidate_loop(seed in 0u64..10_000) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let n = 2 + (seed as usize * 13) % 260;
        let rows = 1 + (seed as usize) % 50;
        let min_support = (seed as usize) % 4;
        let masks: Vec<BitSet> = (0..rows).map(|_| random_mask(&mut rng, n, 0.4)).collect();
        let matrix = MaskMatrix::from_bitsets(n, masks.iter().cloned());
        let parent_sets: Vec<BitSet> =
            (0..4).map(|_| random_mask(&mut rng, n, 0.7)).collect();
        let parents_ref: Vec<(&BitSet, usize)> = parent_sets
            .iter()
            .map(|ext| (ext, ext.count().saturating_sub(1)))
            .collect();
        let allowed =
            |p: usize, row: usize| !(p * 7 + row * 3 + seed as usize).is_multiple_of(5);
        let expect = reference_refine(&masks, &parents_ref, allowed, min_support);

        let parents: Vec<ParentSpec<'_>> = parent_sets
            .iter()
            .map(|ext| ParentSpec { ext, max_support: ext.count().saturating_sub(1) })
            .collect();
        for threads in [1usize, 2, 4] {
            let builder = FrontierBuilder::new(
                &matrix,
                FrontierConfig { min_support, threads, ..FrontierConfig::default() },
            );
            let got = builder.refine_parents(&parents, allowed);
            prop_assert_eq!(got.len(), expect.len(), "threads={}", threads);
            for (i, (p, row, support, ext)) in expect.iter().enumerate() {
                let m = got.meta(i);
                prop_assert_eq!(m.parent, *p);
                prop_assert_eq!(m.row, *row);
                prop_assert_eq!(m.support, *support);
                prop_assert_eq!(&got.child_bitset(i), ext, "threads={}", threads);
            }
            // Count-first vs the single-pass (PR 4) builder, bit for bit.
            let single = builder.refine_parents_single_pass(&parents, allowed);
            prop_assert_eq!(got.len(), single.len(), "threads={}", threads);
            for i in 0..single.len() {
                prop_assert_eq!(got.meta(i), single.meta(i), "threads={}", threads);
                prop_assert_eq!(got.child_words(i), single.child_words(i), "threads={}", threads);
            }
        }
    }

    /// `refine_with_prune` — the count-first path with a serial keep
    /// predicate between counting and materialization — emits exactly the
    /// single-pass builder's children post-filtered by the same predicate,
    /// at every thread count. Exercised with a stateful first-wins dedup
    /// predicate (the beam's use) and a support-threshold predicate shaped
    /// like branch-and-bound's optimistic bound.
    #[test]
    fn refine_with_prune_matches_filtered_single_pass(seed in 0u64..10_000) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x0694_6d1f_13b7_a55b);
        let n = 2 + (seed as usize * 19) % 300;
        let rows = 1 + (seed as usize) % 45;
        let min_support = (seed as usize) % 3;
        let masks: Vec<BitSet> = (0..rows).map(|_| random_mask(&mut rng, n, 0.45)).collect();
        let matrix = MaskMatrix::from_bitsets(n, masks.iter().cloned());
        let parent_sets: Vec<BitSet> =
            (0..4).map(|_| random_mask(&mut rng, n, 0.75)).collect();
        let parents: Vec<ParentSpec<'_>> = parent_sets
            .iter()
            .map(|ext| ParentSpec { ext, max_support: ext.count().saturating_sub(1) })
            .collect();
        let allowed = |p: usize, row: usize| !(p + row * 2 + seed as usize).is_multiple_of(7);

        // A stateful dedup predicate (support-keyed, first wins) and a
        // stateless bound-style predicate (keep only supports above a
        // per-parent threshold — monotone in support, like an optimistic
        // bound against an incumbent).
        let bound_floor = 1 + (seed as usize) % 8;

        for threads in [1usize, 2, 4] {
            let builder = FrontierBuilder::new(
                &matrix,
                FrontierConfig { min_support, threads, ..FrontierConfig::default() },
            );
            let single = builder.refine_parents_single_pass(&parents, allowed);

            // Case 1: first-wins dedup on support values.
            let mut seen: HashSet<usize> = HashSet::new();
            let got = builder.refine_with_prune(&parents, allowed, |_, _, support| {
                seen.insert(support)
            });
            let mut seen_ref: HashSet<usize> = HashSet::new();
            let expect: Vec<usize> = (0..single.len())
                .filter(|&i| seen_ref.insert(single.meta(i).support))
                .collect();
            prop_assert_eq!(got.len(), expect.len(), "dedup threads={}", threads);
            for (k, &i) in expect.iter().enumerate() {
                prop_assert_eq!(got.meta(k), single.meta(i), "dedup threads={}", threads);
                prop_assert_eq!(got.child_words(k), single.child_words(i));
            }

            // Case 2: bound-style support-threshold predicate.
            let got = builder.refine_with_prune(&parents, allowed, |p, _, support| {
                support >= bound_floor + p
            });
            let expect: Vec<usize> = (0..single.len())
                .filter(|&i| {
                    let m = single.meta(i);
                    m.support >= bound_floor + m.parent
                })
                .collect();
            prop_assert_eq!(got.len(), expect.len(), "bound threads={}", threads);
            for (k, &i) in expect.iter().enumerate() {
                prop_assert_eq!(got.meta(k), single.meta(i), "bound threads={}", threads);
                prop_assert_eq!(got.child_words(k), single.child_words(i));
            }
        }
    }

    /// The multi-parent grid kernels — one pass over a mask block serving
    /// a whole parent tile — equal the per-parent `and_count_many` /
    /// `and_count_many_select` loop they batch, for every parent count,
    /// row count, and stride (including word-boundary straddles), with
    /// and without a selection mask.
    #[test]
    fn grid_kernels_match_per_parent_loop(seed in 0u64..10_000) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xd1b5_4a32_d192_ed03);
        let n = 1 + (seed as usize * 29) % 320;
        let rows = 1 + (seed as usize) % 24;
        let np = 1 + (seed as usize / 24) % 9;
        let masks: Vec<BitSet> = (0..rows).map(|_| random_mask(&mut rng, n, 0.4)).collect();
        let matrix = MaskMatrix::from_bitsets(n, masks.iter().cloned());
        let block = matrix.block_words(0, rows);
        let parent_sets: Vec<BitSet> =
            (0..np).map(|_| random_mask(&mut rng, n, 0.6)).collect();
        let parents: Vec<&[u64]> = parent_sets.iter().map(|p| p.words()).collect();

        let mut grid = vec![0usize; np * rows];
        kernels::and_count_grid(&parents, block, &mut grid);
        let mut reference = vec![0usize; rows];
        for (p, parent) in parents.iter().enumerate() {
            kernels::and_count_many(parent, block, &mut reference);
            prop_assert_eq!(
                &grid[p * rows..(p + 1) * rows],
                reference.as_slice(),
                "parent {} of {}", p, np
            );
        }

        let select: Vec<bool> = (0..np * rows)
            .map(|c| !(c * 11 + seed as usize).is_multiple_of(3))
            .collect();
        let mut grid_sel = vec![usize::MAX; np * rows];
        kernels::and_count_grid_select(&parents, block, &select, &mut grid_sel);
        let mut ref_sel = vec![usize::MAX; rows];
        for (p, parent) in parents.iter().enumerate() {
            ref_sel.fill(usize::MAX);
            kernels::and_count_many_select(
                parent,
                block,
                &select[p * rows..(p + 1) * rows],
                &mut ref_sel,
            );
            prop_assert_eq!(
                &grid_sel[p * rows..(p + 1) * rows],
                ref_sel.as_slice(),
                "select parent {} of {}", p, np
            );
        }
    }

    /// Extension-hash dedup after (possibly parallel) refinement keeps
    /// exactly the children a serial generate-and-dedup loop keeps.
    #[test]
    fn dedup_is_thread_invariant(seed in 0u64..10_000) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x2545_f491_4f6c_dd1d);
        let n = 40 + (seed as usize) % 100;
        // Few distinct masks repeated: plenty of duplicate extensions.
        let base: Vec<BitSet> = (0..3).map(|_| random_mask(&mut rng, n, 0.5)).collect();
        let masks: Vec<BitSet> = (0..12).map(|j| base[j % 3].clone()).collect();
        let matrix = MaskMatrix::from_bitsets(n, masks.clone());
        let parent_sets: Vec<BitSet> = (0..3).map(|_| random_mask(&mut rng, n, 0.8)).collect();
        let parents: Vec<ParentSpec<'_>> = parent_sets
            .iter()
            .map(|ext| ParentSpec { ext, max_support: n })
            .collect();

        // Extension-hash dedup over the child indices, keyed by the packed
        // extension words.
        let deduped = |threads: usize| {
            let builder = FrontierBuilder::new(
                &matrix,
                FrontierConfig { min_support: 0, threads, ..FrontierConfig::default() },
            );
            let children = builder.refine_parents(&parents, |_, _| true);
            let mut seen = HashSet::new();
            let kept = dedup_in_order(
                0..children.len(),
                |&i| children.child_words(i).to_vec(),
                &mut seen,
            );
            kept.into_iter()
                .map(|i| (children.meta(i), children.child_bitset(i)))
                .collect::<Vec<_>>()
        };
        let serial = deduped(1);
        for threads in [2usize, 4] {
            let got = deduped(threads);
            prop_assert_eq!(got.len(), serial.len(), "threads={}", threads);
            for ((am, ae), (bm, be)) in got.iter().zip(&serial) {
                prop_assert_eq!((am.parent, am.row), (bm.parent, bm.row));
                prop_assert_eq!(ae, be);
            }
        }
    }
}

/// One dedicated (non-global) pool shared by every case of the pooled
/// parity proptest below, so the test exercises a second pool identity
/// without leaking a fresh pool per proptest case.
fn dedicated_pool() -> PoolHandle {
    static POOL: std::sync::OnceLock<PoolHandle> = std::sync::OnceLock::new();
    *POOL.get_or_init(sisd::par::WorkerPool::leaked)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Batch scoring and count-first refinement through the persistent
    /// worker pool are bit-identical to the serial oracle at every
    /// threads ∈ {1, 2, 4} × shards ∈ {1, 3, 7} combination, on the
    /// global pool and on a dedicated pool alike — the "no output bit may
    /// change" contract of the pool migration, including pool *reuse*:
    /// every case after the first runs against already-warm workers.
    #[test]
    fn pooled_scoring_and_refinement_match_the_serial_oracle(seed in 0u64..10_000) {
        let data = bb_data(seed ^ 0x517c_c1b7_2722_0a95, 200 + (seed as usize) % 90);
        let model = BackgroundModel::from_empirical(&data).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let cands: Vec<Candidate> = (0..48)
            .map(|_| Candidate {
                intention: Intention::empty(),
                ext: random_mask(&mut rng, data.n(), 0.5),
            })
            .collect();
        let oracle = Evaluator::gaussian(&data, &model, Default::default(), EvalConfig::default())
            .score_all(&cands);

        let n = data.n();
        let masks: Vec<BitSet> = (0..40).map(|_| random_mask(&mut rng, n, 0.4)).collect();
        let matrix = MaskMatrix::from_bitsets(n, masks.iter().cloned());
        let parent_sets: Vec<BitSet> = (0..12).map(|_| random_mask(&mut rng, n, 0.7)).collect();
        let parents: Vec<ParentSpec<'_>> = parent_sets
            .iter()
            .map(|ext| ParentSpec { ext, max_support: ext.count().saturating_sub(1) })
            .collect();
        let serial_builder = FrontierBuilder::new(
            &matrix,
            FrontierConfig { min_support: 2, threads: 1, ..FrontierConfig::default() },
        );
        let expect = serial_builder.refine_with_prune(&parents, |_, _| true, |_, _, s| s % 5 != 0);

        for pool in [PoolHandle::global(), dedicated_pool()] {
            for threads in [1usize, 2, 4] {
                for shards in [1usize, 3, 7] {
                    let cfg = EvalConfig::with_threads(threads)
                        .with_shards(shards)
                        .with_pool(pool);
                    let ev = Evaluator::gaussian(&data, &model, Default::default(), cfg);
                    let got = ev.score_all(&cands);
                    prop_assert_eq!(got.len(), oracle.len());
                    for (a, b) in got.iter().zip(&oracle) {
                        prop_assert_eq!(&a.ext, &b.ext, "threads={} shards={}", threads, shards);
                        prop_assert_eq!(
                            a.score.si.to_bits(),
                            b.score.si.to_bits(),
                            "threads={} shards={} global={}", threads, shards, pool.is_global()
                        );
                    }
                }
                let builder = FrontierBuilder::new(
                    &matrix,
                    FrontierConfig { min_support: 2, threads, pool, ..FrontierConfig::default() },
                );
                let got = builder.refine_with_prune(&parents, |_, _| true, |_, _, s| s % 5 != 0);
                prop_assert_eq!(got.len(), expect.len(), "threads={}", threads);
                for i in 0..expect.len() {
                    prop_assert_eq!(got.meta(i), expect.meta(i), "threads={}", threads);
                    prop_assert_eq!(got.child_words(i), expect.child_words(i), "threads={}", threads);
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Search-level parity: the refactored strategies against the pre-refactor
// serial generation path.
// ----------------------------------------------------------------------

/// Canonical intention key, replicated from the search crate's dedup so the
/// reference loop below matches the pre-refactor code exactly.
fn intention_key(intention: &Intention) -> Vec<(usize, u8, u64)> {
    let mut key: Vec<(usize, u8, u64)> = intention
        .conditions()
        .iter()
        .map(|c| match c.op {
            ConditionOp::Ge(t) => (c.attr, 0u8, t.to_bits()),
            ConditionOp::Le(t) => (c.attr, 1u8, t.to_bits()),
            ConditionOp::Eq(l) => (c.attr, 2u8, u64::from(l)),
        })
        .collect();
    key.sort_unstable();
    key
}

/// The pre-refactor beam: serial per-candidate generation (`BitSet::and`
/// per (parent, condition) pair, condition masks evaluated into a plain
/// `Vec<BitSet>`), the same structural filters and dedup, scoring through
/// the engine, the same top-k and level-selection rules.
fn reference_beam(
    data: &Dataset,
    model: &BackgroundModel,
    cfg: &BeamConfig,
) -> (Vec<LocationPattern>, usize) {
    let ev = Evaluator::gaussian(data, model, cfg.dl, EvalConfig::default());
    let conditions = generate_conditions(data, &cfg.refine);
    let condition_exts: Vec<BitSet> = conditions.iter().map(|c| c.evaluate(data)).collect();
    let max_cov =
        ((data.n() as f64 * cfg.max_coverage_fraction).floor() as usize).max(cfg.min_coverage);
    let mut top: Vec<LocationPattern> = Vec::new();
    let mut evaluated = 0usize;
    let mut seen: HashSet<Vec<(usize, u8, u64)>> = HashSet::new();
    let mut frontier: Vec<(Intention, BitSet)> = vec![(Intention::empty(), BitSet::full(data.n()))];
    for _depth in 1..=cfg.max_depth {
        let mut batch: Vec<Candidate> = Vec::new();
        for (parent_intent, parent_ext) in &frontier {
            for (cidx, cond) in conditions.iter().enumerate() {
                if parent_intent.conflicts_with(cond) {
                    continue;
                }
                let ext = parent_ext.and(&condition_exts[cidx]);
                let m = ext.count();
                if m < cfg.min_coverage || m > max_cov || m == parent_ext.count() {
                    continue;
                }
                let child_intent = parent_intent.with(*cond);
                if !seen.insert(intention_key(&child_intent)) {
                    continue;
                }
                batch.push(Candidate {
                    intention: child_intent,
                    ext,
                });
            }
        }
        let scored = ev.score_all(&batch);
        evaluated += scored.len();
        let mut level: Vec<(Intention, BitSet, f64)> = Vec::with_capacity(scored.len());
        for s in scored {
            level.push((s.intention.clone(), s.ext.clone(), s.score.si));
            let p = s.into_pattern();
            let pos = top.partition_point(|q| q.score.si >= p.score.si);
            if pos < cfg.top_k {
                top.insert(pos, p);
                top.truncate(cfg.top_k);
            }
        }
        if level.is_empty() {
            break;
        }
        level.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
        level.truncate(cfg.width);
        frontier = level.into_iter().map(|(i, e, _)| (i, e)).collect();
    }
    (top, evaluated)
}

#[test]
fn beam_search_is_bit_identical_to_the_pre_refactor_path() {
    let (data, _) = sisd::data::datasets::synthetic_paper(42);
    let model = BackgroundModel::from_empirical(&data).unwrap();
    let cfg = BeamConfig {
        width: 12,
        max_depth: 3,
        top_k: 60,
        ..BeamConfig::default()
    };
    let (expect_top, expect_evaluated) = reference_beam(&data, &model, &cfg);
    for threads in [1usize, 4] {
        let cfg_t = BeamConfig {
            eval: EvalConfig::with_threads(threads),
            ..cfg.clone()
        };
        let result = BeamSearch::new(cfg_t).run(&data, &model);
        assert_eq!(result.evaluated, expect_evaluated, "threads={threads}");
        assert_eq!(result.top.len(), expect_top.len(), "threads={threads}");
        for (a, b) in result.top.iter().zip(&expect_top) {
            assert_eq!(a.extension, b.extension, "threads={threads}");
            assert_eq!(a.intention, b.intention, "threads={threads}");
            assert_eq!(
                a.score.si.to_bits(),
                b.score.si.to_bits(),
                "threads={threads}: SI must be bit-identical to the pre-refactor path"
            );
        }
    }
}

/// A single-target dataset with a planted subgroup, for branch-and-bound.
fn bb_data(seed: u64, n: usize) -> Dataset {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let flag: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
    let num: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
    let mut targets = Matrix::zeros(n, 1);
    for i in 0..n {
        let boost = if flag[i] { 2.0 } else { 0.0 };
        targets[(i, 0)] = rng.normal() + boost + 0.5 * num[i];
    }
    Dataset::new(
        "bb",
        vec!["flag".into(), "num".into()],
        vec![Column::binary(&flag), Column::Numeric(num)],
        vec!["y".into()],
        targets,
    )
}

#[test]
fn branch_bound_is_thread_invariant_through_the_frontier() {
    let data = bb_data(11, 250);
    let model = BackgroundModel::from_empirical(&data).unwrap();
    let run = |threads: usize| {
        branch_bound_search(
            &data,
            &model,
            BranchBoundConfig {
                max_depth: 3,
                min_coverage: 5,
                eval: EvalConfig::with_threads(threads),
                ..BranchBoundConfig::default()
            },
        )
    };
    let serial = run(1);
    let best = serial.best.as_ref().expect("optimum found");
    let parallel = run(4);
    assert_eq!(parallel.evaluated, serial.evaluated);
    assert_eq!(parallel.pruned, serial.pruned);
    let pbest = parallel.best.as_ref().unwrap();
    assert_eq!(pbest.extension, best.extension);
    assert_eq!(pbest.score.si.to_bits(), best.score.si.to_bits());
}
