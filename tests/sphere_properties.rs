//! Property-based tests of the spread-direction machinery: the optimizer's
//! output must be a unit vector no worse than canonical directions, the IC
//! must be sign-symmetric and rotation-consistent, and the 2-sparse variant
//! must match the full search when `dy = 2`.

use proptest::prelude::*;
use sisd::core::{spread_si, DlParams, Intention};
use sisd::data::{BitSet, Column, Dataset};
use sisd::linalg::Matrix;
use sisd::model::BackgroundModel;
use sisd::search::{optimize_direction, optimize_direction_two_sparse, SphereConfig};
use sisd::stats::Xoshiro256pp;

/// Random 3-target dataset with an anisotropic planted subgroup.
fn dataset(seed: u64) -> (Dataset, BitSet) {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let n = 90;
    let flag: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
    let mut targets = Matrix::zeros(n, 3);
    for i in 0..n {
        if flag[i] {
            // Elongated cluster: big variance on axis 0, tiny on axis 2.
            targets[(i, 0)] = 2.0 + 1.5 * rng.normal();
            targets[(i, 1)] = -1.0 + 0.5 * rng.normal();
            targets[(i, 2)] = 1.0 + 0.05 * rng.normal();
        } else {
            for j in 0..3 {
                targets[(i, j)] = rng.normal();
            }
        }
    }
    let data = Dataset::new(
        "sphere-prop",
        vec!["flag".into()],
        vec![Column::binary(&flag)],
        vec!["t0".into(), "t1".into(), "t2".into()],
        targets,
    );
    let ext = BitSet::from_fn(n, |i| i % 3 == 0);
    (data, ext)
}

fn assimilated(seed: u64) -> (Dataset, BackgroundModel, BitSet) {
    let (data, ext) = dataset(seed);
    let mut model = BackgroundModel::from_empirical(&data).unwrap();
    let mean = data.target_mean(&ext);
    model.assimilate_location(&ext, mean).unwrap();
    (data, model, ext)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn optimum_is_unit_norm_and_beats_axes(seed in 0u64..300) {
        let (data, model, ext) = assimilated(seed);
        let cfg = SphereConfig { random_starts: 4, ..SphereConfig::default() };
        let res = optimize_direction(&model, &data, &ext, &cfg);
        prop_assert!((sisd::linalg::norm2(&res.w) - 1.0).abs() < 1e-9);
        let dl = DlParams::default();
        let intent = Intention::empty();
        let best = spread_si(&model, &data, &intent, &ext, &res.w, &dl).unwrap().ic;
        for j in 0..3 {
            let mut axis = vec![0.0; 3];
            axis[j] = 1.0;
            let axis_ic = spread_si(&model, &data, &intent, &ext, &axis, &dl).unwrap().ic;
            prop_assert!(best >= axis_ic - 1e-6, "axis {j} beats optimum: {axis_ic} > {best}");
        }
    }

    #[test]
    fn ic_is_sign_symmetric(seed in 0u64..300, a in -1.0f64..1.0, b in -1.0f64..1.0, c in -1.0f64..1.0) {
        let (data, model, ext) = assimilated(seed);
        let mut w = vec![a, b, c];
        if sisd::linalg::normalize(&mut w) == 0.0 {
            w = vec![1.0, 0.0, 0.0];
        }
        let neg: Vec<f64> = w.iter().map(|v| -v).collect();
        let dl = DlParams::default();
        let intent = Intention::empty();
        let p = spread_si(&model, &data, &intent, &ext, &w, &dl).unwrap();
        let q = spread_si(&model, &data, &intent, &ext, &neg, &dl).unwrap();
        prop_assert!((p.ic - q.ic).abs() < 1e-9);
        prop_assert!((p.observed - q.observed).abs() < 1e-12);
    }

    #[test]
    fn multistart_is_monotone_in_restarts(seed in 0u64..100) {
        // More restarts can only improve (or tie) the best IC found.
        let (data, model, ext) = assimilated(seed);
        let few = optimize_direction(&model, &data, &ext, &SphereConfig {
            random_starts: 1, seed: 9, ..SphereConfig::default()
        });
        let many = optimize_direction(&model, &data, &ext, &SphereConfig {
            random_starts: 8, seed: 9, ..SphereConfig::default()
        });
        prop_assert!(many.ic >= few.ic - 1e-9, "{} < {}", many.ic, few.ic);
    }
}

#[test]
fn two_sparse_never_beats_full_search() {
    // The 2-sparse feasible set is a subset of the sphere, so its optimum
    // is at most the full optimum (up to optimizer tolerance).
    for seed in [1u64, 5, 11] {
        let (data, model, ext) = assimilated(seed);
        let cfg = SphereConfig::default();
        let full = optimize_direction(&model, &data, &ext, &cfg);
        let sparse = optimize_direction_two_sparse(&model, &data, &ext, &cfg);
        assert!(
            sparse.ic <= full.ic + 1e-3,
            "seed {seed}: sparse {} > full {}",
            sparse.ic,
            full.ic
        );
        // And the sparse direction has at most two non-zero coordinates.
        let nz = sparse.w.iter().filter(|v| v.abs() > 1e-9).count();
        assert!(nz <= 2);
    }
}

#[test]
fn planted_low_variance_axis_is_found() {
    // Axis 2 has within-subgroup sd 0.05 vs background ≈ 1: the optimizer
    // must put dominant weight there.
    let (data, model, ext) = assimilated(3);
    let res = optimize_direction(&model, &data, &ext, &SphereConfig::default());
    assert!(
        res.w[2].abs() > 0.9,
        "expected axis-2 dominance, got {:?}",
        res.w
    );
}
