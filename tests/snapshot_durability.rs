//! The durability and recovery contract of session snapshots
//! (`sisd_data::snap` + `BackgroundModel::snapshot/restore` +
//! `Miner::save/load`):
//!
//! 1. **Byte stability.** For arbitrary mined sessions, snapshot →
//!    restore → snapshot reproduces the identical byte string — the
//!    format is canonical, with no hidden nondeterminism.
//! 2. **Corruption is always a clean error.** Any single-byte mutation
//!    and any truncation of a valid snapshot yields `Err` — never a
//!    panic, hang, or silently wrong model.
//! 3. **Restore parity.** A restored miner's subsequent searches and
//!    refits are bit-identical to the uninterrupted original, at every
//!    combination of worker threads {1, 4} × row shards {1, 3}.
//! 4. **Crash safety.** A write torn at an arbitrary byte offset (the
//!    `FailingWriter` fault injector) never corrupts the previous
//!    durable snapshot.

use proptest::prelude::*;
use sisd::data::datasets::synthetic_paper;
use sisd::data::snap::FailingWriter;
use sisd::search::{BeamConfig, BeamResult, Miner, MinerConfig, SphereConfig};
use std::io::Write as _;

fn quick_config() -> MinerConfig {
    MinerConfig {
        beam: BeamConfig {
            width: 10,
            max_depth: 1,
            top_k: 20,
            ..BeamConfig::default()
        },
        sphere: SphereConfig {
            random_starts: 2,
            ..SphereConfig::default()
        },
        two_sparse_spread: false,
        refit_tol: 1e-9,
        refit_max_cycles: 100,
    }
}

fn config_at(threads: usize, shards: usize) -> MinerConfig {
    quick_config().with_threads(threads).with_shards(shards)
}

/// Mines a session: `iters` iterations on `synthetic_paper(seed)`, with a
/// spread pattern on the first iteration when `with_spread` (so the
/// snapshot covers tilted covariances, S-factors, and spread duals).
fn mined_session(seed: u64, iters: usize, with_spread: bool, config: MinerConfig) -> Miner {
    let (data, _) = synthetic_paper(seed);
    let mut miner = Miner::from_empirical(data, config).expect("empirical model");
    for i in 0..iters {
        let stepped = if with_spread && i == 0 {
            miner.step_with_spread().expect("assimilation")
        } else {
            miner.step_location().expect("assimilation")
        };
        if stepped.is_none() {
            break;
        }
    }
    miner
}

/// Everything observable about one search, bitwise: per-pattern extension
/// plus the raw bits of its SI score.
fn search_digest(result: &BeamResult) -> Vec<(Vec<usize>, u64)> {
    result
        .top
        .iter()
        .map(|p| (p.extension.to_indices(), p.score.si.to_bits()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Satellite: random-model snapshot round-trip is byte-stable.
    #[test]
    fn snapshot_roundtrip_is_byte_stable(
        seed in 0u64..1000,
        iters in 1usize..4,
        spread in any::<bool>(),
    ) {
        let miner = mined_session(seed, iters, spread, quick_config());
        let bytes = miner.snapshot_bytes().expect("snapshot");
        let (data, _) = synthetic_paper(seed);
        let restored = Miner::restore_bytes(&bytes, data, quick_config()).expect("restore");
        let again = restored.snapshot_bytes().expect("re-snapshot");
        prop_assert_eq!(
            &bytes, &again,
            "snapshot → restore → snapshot must reproduce identical bytes \
             (seed {seed}, iters {iters}, spread {spread})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Satellite: single-byte mutations at arbitrary offsets always yield
    /// a clean `Err`, never a panic or a silently wrong model.
    #[test]
    fn any_single_byte_mutation_fails_cleanly(
        offset in 0usize..usize::MAX / 2,
        bit in 0usize..8,
    ) {
        // One fixed session, mutated at a proptest-chosen offset. The
        // session is rebuilt per case (the shim has no per-test setup),
        // but with one fast iteration that is cheap.
        let miner = mined_session(42, 1, true, quick_config());
        let bytes = miner.snapshot_bytes().expect("snapshot");
        let offset = offset % bytes.len();
        let mut bad = bytes.clone();
        bad[offset] ^= 1 << bit;
        let (data, _) = synthetic_paper(42);
        let result = Miner::restore_bytes(&bad, data, quick_config());
        prop_assert!(
            result.is_err(),
            "flipping bit {bit} of byte {offset}/{} must be rejected",
            bytes.len()
        );
    }

    /// Satellite: truncation at any offset is `Err`, never a panic.
    #[test]
    fn any_truncation_fails_cleanly(cut in 0usize..usize::MAX / 2) {
        let miner = mined_session(42, 1, true, quick_config());
        let bytes = miner.snapshot_bytes().expect("snapshot");
        let cut = cut % bytes.len(); // strictly shorter than the original
        let (data, _) = synthetic_paper(42);
        let result = Miner::restore_bytes(&bytes[..cut], data, quick_config());
        prop_assert!(result.is_err(), "truncation to {cut}/{} bytes", bytes.len());
    }
}

/// Acceptance: a restored miner's subsequent searches and refits are
/// bit-identical to the uninterrupted original, across worker threads
/// {1, 4} × row shards {1, 3} on both sides of the snapshot.
#[test]
fn restored_sessions_are_bit_identical_across_threads_and_shards() {
    for &(threads, shards) in &[(1usize, 1usize), (1, 3), (4, 1), (4, 3)] {
        // The uninterrupted reference session, mined at this combo.
        let original = mined_session(42, 2, true, config_at(threads, shards));
        let bytes = original.snapshot_bytes().expect("snapshot");
        // Restore at every combo: the execution plan must never leak
        // into results, so each restored session must track the
        // original bit-for-bit.
        for &(rt, rs) in &[(1usize, 1usize), (1, 3), (4, 1), (4, 3)] {
            let (data, _) = synthetic_paper(42);
            let mut restored =
                Miner::restore_bytes(&bytes, data, config_at(rt, rs)).expect("restore");
            assert_eq!(restored.iterations_done(), original.iterations_done());
            assert_eq!(
                search_digest(&restored.search_locations()),
                search_digest(&original.search_locations()),
                "search after restore diverged: mined at ({threads},{shards}), \
                 resumed at ({rt},{rs})"
            );
            // Continue both sessions one iteration and compare the refit
            // work and the mined pattern.
            let a = original
                .clone()
                .step_with_spread()
                .expect("original step")
                .expect("pattern");
            let b = restored
                .step_with_spread()
                .expect("restored step")
                .expect("pattern");
            assert_eq!(a.location.extension, b.location.extension);
            assert_eq!(
                a.location.score.si.to_bits(),
                b.location.score.si.to_bits(),
                "post-restore SI bits diverged at ({rt},{rs})"
            );
            assert_eq!(
                a.spread.map(|s| s.observed_variance.to_bits()),
                b.spread.map(|s| s.observed_variance.to_bits())
            );
            assert_eq!(restored.last_refit_stats(), {
                // The original clone used for stepping owns its stats.
                let mut orig =
                    Miner::restore_bytes(&bytes, synthetic_paper(42).0, config_at(threads, shards))
                        .expect("restore reference");
                orig.step_with_spread().expect("step").expect("pattern");
                orig.last_refit_stats()
            });
        }
    }
}

/// Crash safety: a write torn at an arbitrary offset (fault-injected via
/// `FailingWriter`) leaves the previous durable snapshot untouched and
/// loadable, and the torn bytes themselves never load.
#[test]
fn torn_writes_never_corrupt_the_durable_snapshot() {
    let dir = std::env::temp_dir().join(format!(
        "sisd-torn-write-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("session.snap");

    let mut miner = mined_session(42, 1, false, quick_config());
    miner.save(&path).expect("first save");
    let v1 = std::fs::read(&path).expect("durable v1");

    // The session advances; a crash tears the *next* snapshot's write at
    // every 37th offset (a full per-byte sweep at integration-test cost).
    miner.step_location().expect("step").expect("pattern");
    let v2 = miner.snapshot_bytes().expect("snapshot v2");
    for cut in (0..v2.len()).step_by(37) {
        let mut torn = FailingWriter::new(Vec::new(), cut);
        let _ = torn.write_all(&v2); // fails once `cut` bytes are down
        let torn = torn.into_inner();
        assert_eq!(torn.len(), cut, "fault injector must cut exactly at {cut}");
        // The torn bytes land in a temp file that never got renamed over
        // the snapshot — exactly what `atomic_write` guarantees. The
        // durable file still holds v1...
        std::fs::write(dir.join(".session.snap.tmp.999"), &torn).expect("stranded temp");
        assert_eq!(std::fs::read(&path).expect("v1 intact"), v1);
        let (data, _) = synthetic_paper(42);
        let recovered = Miner::load(&path, data, quick_config()).expect("v1 loads");
        assert_eq!(recovered.iterations_done(), 1);
        // ...and the torn prefix itself never parses (empty input is the
        // one trivially-detected case checked outside the loop).
        if cut > 0 {
            let (data, _) = synthetic_paper(42);
            assert!(Miner::restore_bytes(&torn, data, quick_config()).is_err());
        }
    }
    // A completed rewrite replaces v1 atomically.
    miner.save(&path).expect("second save");
    assert_eq!(std::fs::read(&path).expect("v2 durable"), v2);
    std::fs::remove_dir_all(&dir).ok();
}
