//! Workspace smoke test: the whole pipeline must be reachable through
//! `sisd::prelude` alone, and the unified `SisdError` must let every layer's
//! errors compose behind one `?`.
//!
//! Runs a tiny end-to-end loop on a hand-built dataset: mine the most
//! interesting location pattern, assimilate it into the background model,
//! and re-mine — the assimilated subgroup must no longer be interesting.

use sisd::prelude::*;

/// 24 rows, one categorical attribute with a planted high-mean group, one
/// numeric decoy attribute, and a 1-D target.
fn tiny_dataset() -> Dataset {
    let n = 24;
    let group: Vec<&str> = (0..n)
        .map(|i| if i % 3 == 0 { "hot" } else { "cold" })
        .collect();
    let decoy: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    // Target: "hot" rows centered at 4.0, the rest at 0.0, with a small
    // deterministic wobble so the covariance is not degenerate.
    let target: Vec<f64> = (0..n)
        .map(|i| {
            let base = if i % 3 == 0 { 4.0 } else { 0.0 };
            base + 0.25 * ((i * 7 + 1) as f64).sin()
        })
        .collect();
    Dataset::new(
        "facade-smoke",
        vec!["group".to_string(), "decoy".to_string()],
        vec![
            Column::categorical_from_strs(&group),
            Column::Numeric(decoy),
        ],
        vec!["y".to_string()],
        Matrix::from_vec(n, 1, target),
    )
}

fn small_config() -> MinerConfig {
    MinerConfig {
        beam: BeamConfig {
            width: 8,
            max_depth: 2,
            top_k: 20,
            min_coverage: 3,
            ..BeamConfig::default()
        },
        sphere: SphereConfig::default(),
        two_sparse_spread: false,
        refit_tol: 1e-9,
        refit_max_cycles: 50,
    }
}

/// The mine → assimilate → re-mine loop, written the way downstream code
/// would write it: every fallible layer funnels into `SisdResult` via `?`.
fn mine_assimilate_remine() -> SisdResult<(String, f64, f64)> {
    let data = tiny_dataset();

    // Layer hop 1: the parse mini-language (ParseError -> SisdError).
    let intention = parse_intention(&data, "group = hot")?;
    let planted = intention.evaluate(&data);
    assert_eq!(planted.count(), 8);

    // Layer hop 2: model construction (ModelError -> SisdError).
    let config = small_config();
    let dl = config.dl();
    let mut miner = Miner::from_empirical(data.clone(), config)?;

    let first = miner.search_locations();
    let best = first
        .top
        .first()
        .cloned()
        .expect("first mine found nothing");
    let label = best.intention.describe(&data);
    let si_before = best.score.si;

    // Layer hop 3: assimilation + refit (ModelError -> SisdError).
    miner.assimilate_location(&best)?;

    // Re-score the assimilated pattern against the updated model directly
    // (rather than fishing it out of a second beam log, where absence would
    // silently score 0): layer hop 4, scoring (ModelError -> SisdError).
    let si_after = location_si(
        miner.model_mut(),
        &data,
        &best.intention,
        &best.extension,
        &dl,
    )?
    .si;

    // Re-mine: the next most interesting pattern must be something new.
    let second = miner.search_locations();
    let next = second.top.first().expect("re-mine found nothing");
    assert_ne!(
        next.extension, best.extension,
        "re-mine surfaced the already-assimilated subgroup again"
    );

    Ok((label, si_before, si_after))
}

#[test]
fn prelude_runs_the_full_loop_and_assimilation_collapses_si() {
    let (label, si_before, si_after) = mine_assimilate_remine().expect("pipeline failed");

    // The planted "hot" subgroup is what the first mine surfaces.
    assert!(
        label.contains("group") && label.contains("hot"),
        "expected the planted subgroup first, got '{label}'"
    );
    assert!(si_before > 0.0, "planted pattern scored SI {si_before}");

    // Once told, no longer interesting (paper §II-C: the IC of an
    // assimilated pattern collapses; a small residual remains because the
    // IC is a log-density evaluated at the now-matched mode).
    assert!(
        si_after < 0.2 * si_before,
        "assimilation did not collapse SI: before {si_before}, after {si_after}"
    );
}

#[test]
fn csv_errors_flow_through_sisd_error() {
    fn load_garbage() -> SisdResult<Dataset> {
        Ok(sisd::data::csv::dataset_from_csv_str(
            "bad",
            "a,b\n1\n",
            &["b"],
        )?)
    }
    let err = load_garbage().expect_err("ragged CSV must fail");
    assert!(matches!(err, SisdError::Csv(_)));
    // The source chain reaches the layer error.
    let dyn_err: &dyn std::error::Error = &err;
    assert!(dyn_err
        .source()
        .expect("source")
        .to_string()
        .contains("fields"));
}
