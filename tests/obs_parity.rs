//! Observability never changes output bits.
//!
//! The `sisd-obs` layer's hard contract: an enabled metrics/tracing handle
//! — counters, spans, and an event sink — must leave every search result
//! bit-identical to the disabled-handle run, at any thread and shard
//! count. These tests run full Gaussian beam searches over random datasets
//! with obs off, obs on over a `NullSink` (counters only), and obs on over
//! a `RingSink` (counters + event stream), and require bitwise equality of
//! every pattern, plus self-consistent counters in the recorded report.

use proptest::prelude::*;
use sisd::data::{Column, Dataset};
use sisd::linalg::Matrix;
use sisd::model::BackgroundModel;
use sisd::obs::{Metric, MetricKind, NullSink, Obs, ObsHandle, RingSink, TraceEvent, TraceSink};
use sisd::search::{BeamConfig, BeamResult, BeamSearch, EvalConfig, Miner, MinerConfig};
use sisd::stats::Xoshiro256pp;

/// Random mixed-type dataset with a planted signal (same shape as the
/// shard-parity suite's generator).
fn random_dataset(seed: u64, n: usize, dy: usize) -> Dataset {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let flag: Vec<bool> = (0..n).map(|_| rng.uniform() < 0.3).collect();
    let num: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
    let mut targets = Matrix::zeros(n, dy);
    for i in 0..n {
        let boost = if flag[i] { 1.5 } else { 0.0 };
        for j in 0..dy {
            targets[(i, j)] = rng.normal() + boost * [1.0, -0.6][j % 2] + 0.3 * num[i];
        }
    }
    Dataset::new(
        "rnd",
        vec!["flag".into(), "num".into()],
        vec![Column::binary(&flag), Column::Numeric(num)],
        (0..dy).map(|j| format!("y{j}")).collect(),
        targets,
    )
}

/// Forwards events to a leaked ring so the test can read them back while
/// the obs owns the sink box.
struct SharedRing(&'static RingSink);

impl TraceSink for SharedRing {
    fn record(&self, event: &TraceEvent) {
        self.0.record(event);
    }
}

fn assert_same_results(a: &BeamResult, b: &BeamResult, label: &str) {
    assert_eq!(a.evaluated, b.evaluated, "{label}: evaluated");
    assert_eq!(a.top.len(), b.top.len(), "{label}: top length");
    for (x, y) in a.top.iter().zip(&b.top) {
        assert_eq!(x.intention, y.intention, "{label}: intention");
        assert_eq!(x.extension, y.extension, "{label}: extension");
        assert_eq!(
            x.score.si.to_bits(),
            y.score.si.to_bits(),
            "{label}: SI must be bit-identical"
        );
        assert_eq!(x.score.ic.to_bits(), y.score.ic.to_bits(), "{label}: IC");
        for (u, v) in x.observed_mean.iter().zip(&y.observed_mean) {
            assert_eq!(u.to_bits(), v.to_bits(), "{label}: observed mean");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Beam searches with an enabled obs handle (counters-only and with a
    /// live event sink) are bit-identical to the disabled-handle search at
    /// threads {1, 4} × shards {1, 3}.
    #[test]
    fn obs_never_changes_beam_results(seed in 0u64..1_000) {
        let n = 80 + (seed as usize * 37) % 160;
        let data = random_dataset(seed, n, 2);
        let model = BackgroundModel::from_empirical(&data).unwrap();
        let base = BeamConfig {
            width: 8,
            max_depth: 2,
            top_k: 30,
            min_coverage: 5,
            ..BeamConfig::default()
        };
        let reference = BeamSearch::new(base.clone()).run(&data, &model);
        for threads in [1usize, 4] {
            for shards in [1usize, 3] {
                let eval = EvalConfig::with_threads(threads).with_shards(shards);
                for (label, obs) in [
                    ("disabled", ObsHandle::disabled()),
                    ("null-sink", Obs::leaked(Box::new(NullSink))),
                    ("ring-sink", Obs::leaked(Box::new(RingSink::new(4096)))),
                ] {
                    let cfg = BeamConfig {
                        eval: eval.with_obs(obs),
                        ..base.clone()
                    };
                    let got = BeamSearch::new(cfg).run(&data, &model);
                    assert_same_results(
                        &reference,
                        &got,
                        &format!("{label} t={threads} s={shards}"),
                    );
                    if let Some(snap) = obs.snapshot() {
                        // The counters a run just recorded must be
                        // self-consistent, whatever their exact values.
                        prop_assert_eq!(snap.get(Metric::SearchRuns), 1, "{}", label);
                        prop_assert_eq!(
                            snap.get(Metric::FrontierRefineCalls),
                            snap.get(Metric::FrontierGridDispatch)
                                + snap.get(Metric::FrontierFusedDispatch),
                            "{}: every refine call dispatches exactly once",
                            label
                        );
                        prop_assert_eq!(
                            snap.get(Metric::FrontierCandidates),
                            snap.get(Metric::FrontierCountPruned)
                                + snap.get(Metric::FrontierDedupDropped)
                                + snap.get(Metric::FrontierMaterialized),
                            "{}: every counted candidate is accounted for",
                            label
                        );
                        prop_assert_eq!(
                            snap.get(Metric::EvalScored),
                            got.evaluated as u64,
                            "{}: scored counter matches the result log",
                            label
                        );
                    }
                }
            }
        }
    }
}

/// A full mining session (search + assimilate + refit, twice) is
/// bit-identical whether the miner's registry is its private counters-only
/// one or a user-supplied traced handle — and the report's refit counters
/// agree with `last_refit_stats`.
#[test]
fn obs_never_changes_mining_and_report_reconciles() {
    let data = random_dataset(17, 160, 2);
    let quick = MinerConfig {
        beam: BeamConfig {
            width: 8,
            max_depth: 2,
            top_k: 20,
            min_coverage: 5,
            ..BeamConfig::default()
        },
        refit_tol: 1e-9,
        refit_max_cycles: 100,
        ..MinerConfig::default()
    };
    let mut plain = Miner::from_empirical(data.clone(), quick.clone()).unwrap();
    let ring: &'static RingSink = Box::leak(Box::new(RingSink::new(1 << 14)));
    let traced_obs = Obs::leaked(Box::new(SharedRing(ring)));
    let mut traced = Miner::from_empirical(data, quick.with_obs(traced_obs)).unwrap();
    for step in 0..2 {
        let a = plain.step_location().unwrap();
        let b = traced.step_location().unwrap();
        match (a, b) {
            (Some(x), Some(y)) => {
                assert_eq!(x.location.extension, y.location.extension, "step {step}");
                assert_eq!(
                    x.location.score.si.to_bits(),
                    y.location.score.si.to_bits(),
                    "step {step}: SI must be bit-identical under tracing"
                );
            }
            (None, None) => break,
            _ => panic!("step {step}: traced and plain miners diverged"),
        }
    }
    for miner in [&plain, &traced] {
        let report = miner.search_report();
        let last = miner.last_refit_stats().expect("refits ran");
        assert_eq!(
            report.get(Metric::RefitLastCycles),
            last.cycles as u64,
            "report and last_refit_stats must agree"
        );
        assert_eq!(
            report.get(Metric::RefitLastConstraintsUpdated),
            last.constraints_updated as u64
        );
        assert!(report.get(Metric::SearchRuns) >= 2);
        assert!(report.get(Metric::RefitRuns) >= 2);
    }
    // The traced miner's event stream exists and replays to the registry's
    // counter totals (the ring is sized to hold everything this run emits).
    let snap = traced.obs().snapshot().expect("enabled");
    assert_eq!(ring.dropped(), 0, "ring must not have evicted");
    let mut sums = [0u64; Metric::COUNT];
    for ev in ring.events() {
        if !matches!(ev.metric().kind(), MetricKind::Gauge) {
            sums[ev.metric().index()] += ev.value();
        }
    }
    for m in Metric::ALL {
        if matches!(m.kind(), MetricKind::Gauge) {
            continue;
        }
        assert_eq!(
            sums[m.index()],
            snap.get(m),
            "event stream must replay to the registry total for {m}"
        );
    }
}
