//! Engine parity: `Evaluator::score_all` must return **bit-identical**
//! `LocationScore`s at any thread count, on random datasets and random
//! candidate extensions, both on the homogeneous-covariance fast path and
//! on the multi-covariance (post-spread-assimilation) dense branch where
//! the cell-signature memo is in play.

use proptest::prelude::*;
use sisd::core::{location_si, DlParams, Intention};
use sisd::data::{BitSet, Column, Dataset};
use sisd::linalg::Matrix;
use sisd::model::BackgroundModel;
use sisd::search::{Candidate, EvalConfig, Evaluator};
use sisd::stats::Xoshiro256pp;

/// Random dataset: `n` rows, 2 targets, one binary + one numeric attribute.
fn random_data(seed: u64, n: usize) -> Dataset {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let flag: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.4)).collect();
    let num: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
    let mut targets = Matrix::zeros(n, 2);
    for i in 0..n {
        let bump = if flag[i] { 1.0 } else { -0.5 };
        targets[(i, 0)] = rng.normal() + bump;
        targets[(i, 1)] = rng.normal() * 0.7 + 0.3 * num[i];
    }
    Dataset::new(
        "parity",
        vec!["flag".into(), "num".into()],
        vec![Column::binary(&flag), Column::Numeric(num)],
        vec!["y1".into(), "y2".into()],
        targets,
    )
}

/// Random candidate extensions of assorted sizes (some tiny, some broad).
fn random_candidates(seed: u64, n: usize, k: usize) -> Vec<Candidate> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    (0..k)
        .map(|_| {
            let size = 2 + rng.below(n - 2);
            Candidate {
                intention: Intention::empty(),
                ext: BitSet::from_indices(n, rng.sample_indices(n, size)),
            }
        })
        .collect()
}

/// Model with heterogeneous covariances: a location and a spread pattern
/// assimilated on a random subgroup, so candidates straddle cells with
/// different `cov_id`s and the dense branch runs.
fn model_with_spread(data: &Dataset, seed: u64) -> BackgroundModel {
    let mut model = BackgroundModel::from_empirical(data).unwrap();
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x2545f4914f6cdd1d);
    let sub = BitSet::from_indices(data.n(), rng.sample_indices(data.n(), data.n() / 3 + 2));
    let mean = data.target_mean(&sub);
    model.assimilate_location(&sub, mean.clone()).unwrap();
    let mut w = vec![rng.normal(), rng.normal()];
    if sisd::linalg::normalize(&mut w) == 0.0 {
        w = vec![1.0, 0.0];
    }
    let v = data.target_variance_along(&sub, &w).max(1e-6);
    model.assimilate_spread(&sub, w, mean, v).unwrap();
    model
}

fn assert_parity(data: &Dataset, model: &BackgroundModel, cands: &[Candidate]) {
    let dl = DlParams::default();
    // The sequential reference: one-at-a-time scoring through the engine.
    let reference = Evaluator::gaussian(data, model, dl, EvalConfig::default());
    let sequential: Vec<_> = cands
        .iter()
        .filter_map(|c| reference.score_location(&c.intention, &c.ext).ok())
        .collect();
    for threads in [1usize, 2, 4] {
        let ev = Evaluator::gaussian(data, model, dl, EvalConfig::with_threads(threads));
        let batch = ev.score_all(cands);
        assert_eq!(batch.len(), sequential.len(), "threads={threads}");
        for (a, b) in batch.iter().zip(&sequential) {
            assert_eq!(a.ext, b.ext, "threads={threads}");
            assert_eq!(
                a.score.ic.to_bits(),
                b.score.ic.to_bits(),
                "threads={threads}: IC must be bit-identical"
            );
            assert_eq!(
                a.score.dl.to_bits(),
                b.score.dl.to_bits(),
                "threads={threads}: DL must be bit-identical"
            );
            assert_eq!(
                a.score.si.to_bits(),
                b.score.si.to_bits(),
                "threads={threads}: SI must be bit-identical"
            );
        }
    }
    // And the engine agrees with the one-off core scoring function (up to
    // the observed-mean aggregation order) on every candidate.
    for s in &sequential {
        let core = location_si(model, data, &s.intention, &s.ext, &dl).unwrap();
        let tol = 1e-9 * (1.0 + core.si.abs());
        assert!(
            (s.score.si - core.si).abs() < tol,
            "engine {} vs core {}",
            s.score.si,
            core.si
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Homogeneous covariances: the shared-factor fast path.
    #[test]
    fn score_all_is_thread_invariant_on_the_fast_path(seed in 0u64..10_000) {
        let n = 30 + (seed % 50) as usize;
        let data = random_data(seed, n);
        let model = BackgroundModel::from_empirical(&data).unwrap();
        let cands = random_candidates(seed, n, 40);
        assert_parity(&data, &model, &cands);
    }

    /// Heterogeneous covariances: the dense branch with the signature memo.
    #[test]
    fn score_all_is_thread_invariant_on_the_dense_branch(seed in 0u64..10_000) {
        let n = 30 + (seed % 50) as usize;
        let data = random_data(seed, n);
        let model = model_with_spread(&data, seed);
        // The model now has several cells; random candidates straddle them.
        let cands = random_candidates(seed.wrapping_mul(31), n, 40);
        assert_parity(&data, &model, &cands);
    }
}
