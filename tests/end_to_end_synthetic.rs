//! End-to-end integration test reproducing the paper's §III-A experiment
//! programmatically: the miner must recover the three planted subgroups in
//! the first three iterations, and the Table-I bookkeeping must hold.

use sisd::core::{location_si, DlParams};
use sisd::data::datasets::synthetic_paper;
use sisd::search::{BeamConfig, Miner, MinerConfig, SphereConfig};

fn config() -> MinerConfig {
    MinerConfig {
        beam: BeamConfig {
            width: 20,
            max_depth: 2,
            top_k: 50,
            ..BeamConfig::default()
        },
        sphere: SphereConfig {
            random_starts: 3,
            ..SphereConfig::default()
        },
        two_sparse_spread: false,
        refit_tol: 1e-9,
        refit_max_cycles: 100,
    }
}

#[test]
fn three_iterations_recover_all_planted_clusters_across_seeds() {
    for seed in [1u64, 7, 2018] {
        let (data, truth) = synthetic_paper(seed);
        let mut miner = Miner::from_empirical(data, config()).unwrap();
        let mut found = [false; 3];
        for _ in 0..3 {
            let it = miner.step_with_spread().unwrap().expect("pattern");
            for (k, t) in truth.cluster_extensions.iter().enumerate() {
                if it.location.extension == *t {
                    found[k] = true;
                }
            }
        }
        assert_eq!(found, [true; 3], "seed {seed}: not all clusters found");
    }
}

#[test]
fn table1_si_bookkeeping() {
    let (data, _) = synthetic_paper(2018);
    let mut miner = Miner::from_empirical(data.clone(), config()).unwrap();
    let first = miner.search_locations();
    let top: Vec<_> = first.top.iter().take(10).cloned().collect();
    assert!(top.len() >= 10, "beam log too small");

    // The log is sorted by SI.
    for w in top.windows(2) {
        assert!(w[0].score.si >= w[1].score.si);
    }

    // Assimilate the best; its SI and the SI of every equivalent-extension
    // refinement collapses, while disjoint patterns keep their score.
    let best_ext = top[0].extension.clone();
    let it = miner.step_with_spread().unwrap().expect("pattern");
    assert_eq!(it.location.extension, best_ext);

    let dl = DlParams::default();
    for p in &top {
        let after = location_si(miner.model_mut(), &data, &p.intention, &p.extension, &dl)
            .unwrap()
            .si;
        if p.extension == best_ext {
            assert!(after < 1.0, "assimilated-extension pattern kept SI {after}");
        } else if p.extension.is_disjoint(&best_ext) {
            assert!(
                (after - p.score.si).abs() < 0.5,
                "disjoint pattern's SI moved: {} → {after}",
                p.score.si
            );
        }
    }
}

#[test]
fn spread_direction_matches_planted_minor_axis() {
    let (data, truth) = synthetic_paper(2018);
    let mut miner = Miner::from_empirical(data, config()).unwrap();
    let it = miner.step_with_spread().unwrap().expect("pattern");
    let spread = it.spread.expect("spread mined");
    // Which cluster did we find?
    let k = truth
        .cluster_extensions
        .iter()
        .position(|t| *t == it.location.extension)
        .expect("a planted cluster");
    // The most surprising direction is the minor axis (tiny variance),
    // i.e. orthogonal to the planted major axis.
    let major = [truth.angles[k].cos(), truth.angles[k].sin()];
    let dot = (spread.w[0] * major[0] + spread.w[1] * major[1]).abs();
    assert!(
        dot < 0.2,
        "spread direction not orthogonal to major axis: |cos| = {dot}"
    );
    assert!(spread.variance_ratio() < 0.2, "minor axis must be a shrink");
}

#[test]
fn redundant_descriptions_rank_strictly_below_their_parents() {
    let (data, _) = synthetic_paper(2018);
    let miner = Miner::from_empirical(data.clone(), config()).unwrap();
    let result = miner.search_locations();
    for p in &result.top {
        for q in &result.top {
            if p.extension == q.extension && p.intention.len() < q.intention.len() {
                assert!(
                    p.score.si > q.score.si,
                    "longer description must rank lower: {} vs {}",
                    p.summary(&data),
                    q.summary(&data)
                );
            }
        }
    }
}

#[test]
fn miner_keeps_model_consistent_over_many_iterations() {
    let (data, _) = synthetic_paper(5);
    let mut miner = Miner::from_empirical(data, config()).unwrap();
    for _ in 0..5 {
        if miner.step_with_spread().unwrap().is_none() {
            break;
        }
        assert!(
            miner.model().max_violation() < 1e-5,
            "constraints drifted: {}",
            miner.model().max_violation()
        );
    }
    // Cells always partition the rows.
    let n = miner.model().n();
    let total: usize = miner.model().cells().iter().map(|c| c.count).sum();
    assert_eq!(total, n);
}
