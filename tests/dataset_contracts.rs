//! Contracts every synthetic dataset generator must honor, plus CSV
//! round-trips through the full stack — these are the guarantees the
//! experiment harnesses (DESIGN.md §3) build on.

use sisd::data::csv::{dataset_from_csv_str, dataset_to_csv_string};
use sisd::data::datasets::{
    crime_synthetic, german_socio_synthetic, mammals_synthetic, synthetic_paper,
    water_quality_synthetic,
};
use sisd::data::Dataset;
use sisd::linalg::Cholesky;
use sisd::model::BackgroundModel;

fn check_common_contracts(data: &Dataset) {
    // Shapes are consistent.
    assert_eq!(data.desc_names().len(), data.dx());
    assert_eq!(data.target_names().len(), data.dy());
    for col in data.desc_cols() {
        assert_eq!(col.len(), data.n());
    }
    // All targets finite.
    for i in 0..data.n() {
        for v in data.target_row(i) {
            assert!(v.is_finite());
        }
    }
    // Empirical covariance is (jitterably) positive definite — required by
    // the MaxEnt prior.
    let cov = data.target_covariance_all();
    assert!(Cholesky::new_with_jitter(&cov, 4).is_ok());
    // A background model can actually be fit.
    assert!(BackgroundModel::from_empirical(data).is_ok());
}

#[test]
fn all_generators_meet_the_common_contracts() {
    check_common_contracts(&synthetic_paper(1).0);
    check_common_contracts(&crime_synthetic(1));
    check_common_contracts(&mammals_synthetic(1).0);
    check_common_contracts(&german_socio_synthetic(1).0);
    check_common_contracts(&water_quality_synthetic(1));
}

#[test]
fn generator_shapes_match_the_paper() {
    let (syn, _) = synthetic_paper(2);
    assert_eq!((syn.n(), syn.dx(), syn.dy()), (620, 5, 2));
    let crime = crime_synthetic(2);
    assert_eq!((crime.n(), crime.dx(), crime.dy()), (1994, 122, 1));
    let (mammals, coords) = mammals_synthetic(2);
    assert_eq!((mammals.n(), mammals.dx(), mammals.dy()), (2220, 67, 124));
    assert_eq!(coords.len(), 2220);
    let (socio, _) = german_socio_synthetic(2);
    assert_eq!((socio.n(), socio.dx(), socio.dy()), (412, 13, 5));
    let water = water_quality_synthetic(2);
    assert_eq!((water.n(), water.dx(), water.dy()), (1060, 14, 16));
}

#[test]
fn seeds_are_reproducible_and_distinct() {
    for (a, b, c) in [
        (
            crime_synthetic(9).targets().as_slice().to_vec(),
            crime_synthetic(9).targets().as_slice().to_vec(),
            crime_synthetic(10).targets().as_slice().to_vec(),
        ),
        (
            water_quality_synthetic(9).targets().as_slice().to_vec(),
            water_quality_synthetic(9).targets().as_slice().to_vec(),
            water_quality_synthetic(10).targets().as_slice().to_vec(),
        ),
    ] {
        assert_eq!(a, b, "same seed must reproduce identical data");
        assert_ne!(a, c, "different seeds must differ");
    }
}

#[test]
fn csv_roundtrip_preserves_every_generator() {
    for data in [
        synthetic_paper(3).0,
        german_socio_synthetic(3).0,
        water_quality_synthetic(3),
    ] {
        let text = dataset_to_csv_string(&data);
        let names: Vec<&str> = data.target_names().iter().map(|s| s.as_str()).collect();
        let reloaded = dataset_from_csv_str("rt", &text, &names).expect("well-formed");
        assert_eq!(reloaded.n(), data.n());
        assert_eq!(reloaded.dx(), data.dx());
        assert_eq!(reloaded.dy(), data.dy());
        // Targets survive exactly enough for mining (CSV prints shortest
        // roundtrip representation of f64, so equality is exact).
        for j in 0..data.dy() {
            assert_eq!(reloaded.target_col(j), data.target_col(j));
        }
    }
}

#[test]
fn mining_a_reloaded_csv_gives_identical_results() {
    use sisd::search::{BeamConfig, BeamSearch};
    let data = german_socio_synthetic(4).0;
    let text = dataset_to_csv_string(&data);
    let names: Vec<&str> = data.target_names().iter().map(|s| s.as_str()).collect();
    let reloaded = dataset_from_csv_str("rt", &text, &names).unwrap();

    let cfg = BeamConfig {
        width: 10,
        max_depth: 1,
        top_k: 5,
        ..BeamConfig::default()
    };
    let m1 = BackgroundModel::from_empirical(&data).unwrap();
    let m2 = BackgroundModel::from_empirical(&reloaded).unwrap();
    let r1 = BeamSearch::new(cfg.clone()).run(&data, &m1);
    let r2 = BeamSearch::new(cfg).run(&reloaded, &m2);
    let b1 = r1.best().unwrap();
    let b2 = r2.best().unwrap();
    assert_eq!(b1.extension, b2.extension);
    // Description columns may render floats with rounding (display_value
    // uses 4 decimals), so compare extensions and SI, not thresholds.
    assert!((b1.score.si - b2.score.si).abs() < 0.5);
}
