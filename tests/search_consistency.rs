//! Cross-crate search consistency: the heuristic beam against the exact
//! branch-and-bound miner, refinement bookkeeping, and baseline miners on
//! shared data.

use proptest::prelude::*;
use sisd::baselines::{top_k_by_quality, MeanShiftZ};
use sisd::data::{BitSet, Column, Dataset};
use sisd::linalg::Matrix;
use sisd::model::BackgroundModel;
use sisd::search::{branch_bound::branch_bound_search, BeamConfig, BeamSearch, BranchBoundConfig};
use sisd::stats::Xoshiro256pp;

/// Small single-target dataset with a mix of binary and numeric attributes.
fn random_data(seed: u64, n: usize) -> Dataset {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let flag: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.3)).collect();
    let num: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
    let cat = Column::categorical_from_strs(
        &(0..n)
            .map(|_| ["a", "b", "c"][rng.below(3)])
            .collect::<Vec<_>>(),
    );
    let mut targets = Matrix::zeros(n, 1);
    for i in 0..n {
        let bump = if flag[i] { 1.5 } else { 0.0 };
        targets[(i, 0)] = rng.normal() + bump + num[i];
    }
    Dataset::new(
        "rand",
        vec!["flag".into(), "num".into(), "cat".into()],
        vec![Column::binary(&flag), Column::Numeric(num), cat],
        vec!["y".into()],
        targets,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A wide beam at full depth must reach the branch-and-bound optimum
    /// on small data (the beam is complete at depth 1 by construction and
    /// the optimum here is shallow).
    #[test]
    fn wide_beam_matches_branch_bound(seed in 0u64..200) {
        let data = random_data(seed, 80);
        let cfg_depth = 2;
        let min_cov = 5;

        let model = BackgroundModel::from_empirical(&data).unwrap();
        let bb = branch_bound_search(&data, &model, BranchBoundConfig {
            max_depth: cfg_depth,
            min_coverage: min_cov,
            ..BranchBoundConfig::default()
        });
        let optimum = bb.best.expect("optimum exists").score.si;

        let model2 = BackgroundModel::from_empirical(&data).unwrap();
        let beam = BeamSearch::new(BeamConfig {
            width: 10_000, // effectively exhaustive at this size
            max_depth: cfg_depth,
            top_k: 5,
            min_coverage: min_cov,
            max_coverage_fraction: 1.0,
            ..BeamConfig::default()
        });
        let result = beam.run(&data, &model2);
        let beam_best = result.best().expect("found").score.si;
        prop_assert!(
            (beam_best - optimum).abs() < 1e-9,
            "beam {beam_best} vs optimum {optimum} (seed {seed})"
        );
    }

    /// Narrow beams never *exceed* the certified optimum.
    #[test]
    fn beam_never_beats_the_optimum(seed in 0u64..200, width in 1usize..8) {
        let data = random_data(seed, 60);
        let model = BackgroundModel::from_empirical(&data).unwrap();
        let bb = branch_bound_search(&data, &model, BranchBoundConfig {
            max_depth: 2,
            min_coverage: 5,
            ..BranchBoundConfig::default()
        });
        let optimum = bb.best.expect("optimum").score.si;
        let model2 = BackgroundModel::from_empirical(&data).unwrap();
        let result = BeamSearch::new(BeamConfig {
            width,
            max_depth: 2,
            top_k: 3,
            min_coverage: 5,
            max_coverage_fraction: 1.0,
            ..BeamConfig::default()
        })
        .run(&data, &model2);
        if let Some(best) = result.best() {
            prop_assert!(best.score.si <= optimum + 1e-9);
        }
    }
}

#[test]
fn logged_patterns_have_correct_extensions_and_means() {
    let data = random_data(3, 120);
    let model = BackgroundModel::from_empirical(&data).unwrap();
    let result = BeamSearch::new(BeamConfig {
        width: 10,
        max_depth: 2,
        top_k: 40,
        ..BeamConfig::default()
    })
    .run(&data, &model);
    for p in &result.top {
        // Re-evaluating the intention reproduces the stored extension.
        assert_eq!(p.intention.evaluate(&data), p.extension);
        // The stored mean is the extension's target mean.
        let mean = data.target_mean(&p.extension);
        for (a, b) in p.observed_mean.iter().zip(&mean) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(p.extension.count() >= 5);
    }
}

#[test]
fn baseline_and_sisd_agree_on_a_strong_planted_signal() {
    let data = random_data(11, 200);
    // SISD top pattern.
    let model = BackgroundModel::from_empirical(&data).unwrap();
    let sisd_top = BeamSearch::new(BeamConfig {
        width: 20,
        max_depth: 1,
        top_k: 5,
        ..BeamConfig::default()
    })
    .run(&data, &model);
    let sisd_best = sisd_top.best().unwrap();
    // Baseline top pattern.
    let base = top_k_by_quality(&data, &MeanShiftZ { a: 0.5 }, 1, 20, 1, 5);
    let base_best = &base[0];
    // Both must identify the flag attribute at depth 1.
    assert!(sisd_best.intention.conditions()[0].attr == 0);
    assert!(base_best.intention.conditions()[0].attr == 0);
}

#[test]
fn time_budget_zero_terminates_immediately_and_safely() {
    let data = random_data(17, 500);
    let model = BackgroundModel::from_empirical(&data).unwrap();
    let result = BeamSearch::new(BeamConfig {
        time_budget: Some(std::time::Duration::ZERO),
        ..BeamConfig::default()
    })
    .run(&data, &model);
    assert!(result.timed_out);
    assert!(result.top.len() <= 1);
}

#[test]
fn branch_bound_prunes_but_stays_exact_at_depth_three() {
    let data = random_data(29, 70);
    let model = BackgroundModel::from_empirical(&data).unwrap();
    let cfg = BranchBoundConfig {
        max_depth: 3,
        min_coverage: 4,
        ..BranchBoundConfig::default()
    };
    let bb = branch_bound_search(&data, &model, cfg);
    assert!(bb.best.is_some());
    // Exhaustive cross-check with an effectively-unbounded beam.
    let model2 = BackgroundModel::from_empirical(&data).unwrap();
    let result = BeamSearch::new(BeamConfig {
        width: 100_000,
        max_depth: 3,
        top_k: 1,
        min_coverage: 4,
        max_coverage_fraction: 1.0,
        ..BeamConfig::default()
    })
    .run(&data, &model2);
    let exhaustive = result.best().unwrap().score.si;
    let exact = bb.best.unwrap().score.si;
    assert!(
        (exact - exhaustive).abs() < 1e-9,
        "b&b {exact} vs exhaustive {exhaustive}"
    );
    let ext = BitSet::full(data.n());
    assert_eq!(ext.count(), 70); // sanity: helper data size
}
