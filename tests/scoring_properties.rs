//! Property-based tests of the interestingness scores across crates:
//! SI = IC/DL mechanics, coverage monotonicity, assimilation collapse, and
//! the χ²-mixture approximation invariants that the spread IC relies on.

use proptest::prelude::*;
use sisd::core::{
    location_ic, location_si, spread_si, Condition, ConditionOp, DlParams, Intention,
};
use sisd::data::{BitSet, Column, Dataset};
use sisd::linalg::Matrix;
use sisd::model::BackgroundModel;
use sisd::stats::Chi2MixtureApprox;
use sisd::stats::Xoshiro256pp;

/// Dataset with a planted displaced subgroup of controllable size.
fn planted(n: usize, shift: f64, seed: u64) -> Dataset {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let flag: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
    let mut targets = Matrix::zeros(n, 2);
    for i in 0..n {
        let s = if flag[i] { shift } else { 0.0 };
        targets[(i, 0)] = s + rng.normal();
        targets[(i, 1)] = -s + rng.normal();
    }
    Dataset::new(
        "planted",
        vec!["flag".into()],
        vec![Column::binary(&flag)],
        vec!["y1".into(), "y2".into()],
        targets,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn si_is_ic_over_dl(gamma in 0.01f64..2.0, conds in 1usize..5) {
        let data = planted(60, 2.0, 9);
        let model = BackgroundModel::from_empirical(&data).unwrap();
        let mut intent = Intention::empty();
        for _ in 0..conds {
            intent = intent.with(Condition { attr: 0, op: ConditionOp::Eq(1) });
        }
        let ext = BitSet::from_fn(60, |i| i % 3 == 0);
        let dl = DlParams { gamma, eta: 1.0 };
        let s = location_si(&model, &data, &intent, &ext, &dl).unwrap();
        prop_assert!((s.dl - (gamma * conds as f64 + 1.0)).abs() < 1e-12);
        prop_assert!((s.si - s.ic / s.dl).abs() < 1e-12);
    }

    #[test]
    fn bigger_shift_is_more_interesting(shift in 0.5f64..4.0) {
        let weak = planted(90, shift, 5);
        let strong = planted(90, shift + 1.0, 5);
        let ext = BitSet::from_fn(90, |i| i % 3 == 0);
        let m_weak = BackgroundModel::from_empirical(&weak).unwrap();
        let m_strong = BackgroundModel::from_empirical(&strong).unwrap();
        let obs_w = weak.target_mean(&ext);
        let obs_s = strong.target_mean(&ext);
        let ic_w = location_ic(&m_weak, &ext, &obs_w).unwrap();
        let ic_s = location_ic(&m_strong, &ext, &obs_s).unwrap();
        prop_assert!(
            ic_s > ic_w,
            "shift {shift}: IC did not grow ({ic_w} → {ic_s})"
        );
    }

    #[test]
    fn assimilation_always_collapses_si(seed in 0u64..500) {
        let data = planted(60, 2.5, seed);
        let mut model = BackgroundModel::from_empirical(&data).unwrap();
        let intent = Intention::empty().with(Condition { attr: 0, op: ConditionOp::Eq(1) });
        let ext = intent.evaluate(&data);
        let dl = DlParams::default();
        let before = location_si(&model, &data, &intent, &ext, &dl).unwrap().si;
        let mean = data.target_mean(&ext);
        model.assimilate_location(&ext, mean).unwrap();
        let after = location_si(&model, &data, &intent, &ext, &dl).unwrap().si;
        prop_assert!(after < before, "{before} → {after}");
        prop_assert!(after < 2.0, "post-assimilation SI too high: {after}");
    }

    #[test]
    fn spread_si_is_symmetric_in_direction_sign(seed in 0u64..200) {
        let data = planted(60, 2.0, seed);
        let model = BackgroundModel::from_empirical(&data).unwrap();
        let intent = Intention::empty();
        let ext = BitSet::from_fn(60, |i| i % 3 == 0);
        let mut w = vec![0.8, 0.6];
        sisd::linalg::normalize(&mut w);
        let neg: Vec<f64> = w.iter().map(|v| -v).collect();
        let dl = DlParams::default();
        let a = spread_si(&model, &data, &intent, &ext, &w, &dl).unwrap();
        let b = spread_si(&model, &data, &intent, &ext, &neg, &dl).unwrap();
        prop_assert!((a.ic - b.ic).abs() < 1e-9, "IC(w) != IC(-w)");
    }

    #[test]
    fn chi2_mixture_moments_are_exact(
        coeffs in prop::collection::vec(0.01f64..5.0, 1..40)
    ) {
        let approx = Chi2MixtureApprox::from_coefficients(coeffs.iter().copied());
        let mean: f64 = coeffs.iter().sum();
        let var: f64 = 2.0 * coeffs.iter().map(|a| a * a).sum::<f64>();
        prop_assert!((approx.mean() - mean).abs() < 1e-9 * mean.max(1.0));
        prop_assert!((approx.variance() - var).abs() < 1e-9 * var.max(1.0));
        prop_assert!(approx.m > 0.0);
        prop_assert!(approx.alpha > 0.0);
    }

    #[test]
    fn chi2_mixture_cdf_is_monotone(
        coeffs in prop::collection::vec(0.05f64..3.0, 2..20),
        probe in 0.0f64..1.0,
    ) {
        let approx = Chi2MixtureApprox::from_coefficients(coeffs.iter().copied());
        let lo = approx.mean() * probe;
        let hi = approx.mean() * (probe + 0.5);
        prop_assert!(approx.cdf(lo) <= approx.cdf(hi) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&approx.cdf(lo)));
    }

    #[test]
    fn ic_depends_only_on_extension_not_description(seed in 0u64..100) {
        let data = planted(60, 2.0, seed);
        let model = BackgroundModel::from_empirical(&data).unwrap();
        let short = Intention::empty().with(Condition { attr: 0, op: ConditionOp::Eq(1) });
        let long = short.with(Condition { attr: 0, op: ConditionOp::Eq(1) });
        let ext = short.evaluate(&data);
        let dl = DlParams::default();
        let a = location_si(&model, &data, &short, &ext, &dl).unwrap();
        let b = location_si(&model, &data, &long, &ext, &dl).unwrap();
        prop_assert!((a.ic - b.ic).abs() < 1e-12);
        prop_assert!(b.si < a.si);
    }
}
