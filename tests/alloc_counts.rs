//! Allocation accounting for the batch-scoring boundary.
//!
//! PR 3 left one known copy at the `ChildBatch` → `LocationPattern` seam:
//! scored candidates cloned their extension (and intention) into each
//! result. The owned scoring path (`Evaluator::score_all_owned`) moves
//! them instead, so a dedup-surviving extension is heap-allocated exactly
//! once — when it leaves the frontier arena — and that allocation is the
//! one the final pattern owns. This test pins the fix with a counting
//! global allocator: scoring an owned batch must perform at least one
//! fewer allocation per candidate (the extension buffer clone) than the
//! borrowing path, which still clones for its callers.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A pass-through allocator that counts allocations and allocated bytes.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static BYTES: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn counted<T>(f: impl FnOnce() -> T) -> (T, usize, usize) {
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let b0 = BYTES.load(Ordering::Relaxed);
    let out = f();
    (
        out,
        ALLOCS.load(Ordering::Relaxed) - a0,
        BYTES.load(Ordering::Relaxed) - b0,
    )
}

use sisd::core::{DlParams, Intention};
use sisd::data::datasets::synthetic_paper;
use sisd::data::BitSet;
use sisd::model::BackgroundModel;
use sisd::search::{Candidate, EvalConfig, Evaluator};
use sisd::stats::Xoshiro256pp;

fn batch(n: usize, k: usize) -> Vec<Candidate> {
    let mut rng = Xoshiro256pp::seed_from_u64(3);
    (0..k)
        .map(|_| Candidate {
            intention: Intention::empty(),
            ext: BitSet::from_indices(n, rng.sample_indices(n, 40)),
        })
        .collect()
}

#[test]
fn owned_scoring_saves_one_extension_allocation_per_candidate() {
    let (data, _) = synthetic_paper(42);
    let model = BackgroundModel::from_empirical(&data).unwrap();
    let ev = Evaluator::gaussian(&data, &model, DlParams::default(), EvalConfig::default());
    const K: usize = 64;
    let cands = batch(data.n(), K);

    // Warm every lazy structure (per-cell factors, per-cell target sums)
    // so the measured passes differ only in how they treat the candidate.
    let warm = ev.score_all(&cands);
    assert_eq!(warm.len(), K);

    let ext_words = data.n().div_ceil(64);
    let ext_bytes = ext_words * std::mem::size_of::<u64>();

    // Minimum over three passes per path: one-off allocator effects (a
    // hash-map resize landing inside one window) only ever *add* counts,
    // so the minimum is the clean per-pass profile.
    let min3 = |mut pass: Box<dyn FnMut() -> (usize, usize)>| -> (usize, usize) {
        let mut best = (usize::MAX, usize::MAX);
        for _ in 0..3 {
            let (a, b) = pass();
            best = (best.0.min(a), best.1.min(b));
        }
        best
    };

    // Borrowing path: clones each candidate's extension into its result.
    let borrowed = ev.score_all(&cands);
    assert_eq!(borrowed.len(), K);
    let (borrowed_allocs, borrowed_bytes) = min3(Box::new(|| {
        let (out, a, b) = counted(|| ev.score_all(&cands));
        assert_eq!(out.len(), K);
        (a, b)
    }));

    // Owned path: moves each candidate's extension into its result. The
    // clone of the input batch is made *outside* the counted region.
    let owned = ev.score_all_owned(cands.clone());
    for (a, b) in owned.iter().zip(&borrowed) {
        assert_eq!(a.score.si.to_bits(), b.score.si.to_bits());
    }
    let (owned_allocs, owned_bytes) = min3(Box::new(|| {
        let input = cands.clone();
        let (out, a, b) = counted(|| ev.score_all_owned(input));
        assert_eq!(out.len(), K);
        (a, b)
    }));

    // Identical scoring work, minus one extension-buffer clone per
    // candidate (intentions here are empty and clone without allocating).
    assert!(
        owned_allocs + K <= borrowed_allocs,
        "owned scoring must save ≥1 allocation per candidate: \
         owned={owned_allocs}, borrowed={borrowed_allocs}, K={K}"
    );
    assert!(
        owned_bytes + K * ext_bytes <= borrowed_bytes,
        "owned scoring must save the extension bytes: \
         owned={owned_bytes}, borrowed={borrowed_bytes}, per-ext={ext_bytes}"
    );
}

// (The no-copy property is additionally pinned pointer-precisely by
// `owned_scoring_moves_the_extension_allocation` in the eval unit tests:
// the scored result and final pattern hold the candidate's original heap
// buffer. Comparative counting here + pointer identity there avoids
// exact-equality assertions on global allocation counts, which jitter
// with randomized hash-map resize timing.)

#[test]
fn warm_refit_reuses_projection_workspace_without_allocating() {
    // The model's projection hot path (residual scans, Thm. 1 location
    // re-projections) runs entirely out of a reusable workspace living on
    // the model: per-update vectors, the covariance-sum accumulator, the
    // membership marks, and the per-cycle violation/dirty arrays. Pin it
    // two ways with the counting allocator.
    let (data, _) = synthetic_paper(42);
    let mut rng = Xoshiro256pp::seed_from_u64(9);
    let mut model = BackgroundModel::from_empirical(&data).unwrap();
    let exts: Vec<BitSet> = (0..6)
        .map(|_| BitSet::from_indices(data.n(), rng.sample_indices(data.n(), 40)))
        .collect();
    for ext in &exts {
        model
            .assimilate_location(ext, data.target_mean(ext))
            .unwrap();
        let _ = model.refit(1e-9, 200).unwrap();
    }

    // (1) A converged refit — a full residual scan over every stored
    // constraint — allocates nothing at all.
    let mut converged_allocs = usize::MAX;
    for _ in 0..3 {
        let (stats, a, _) = counted(|| model.refit(1e-9, 200).unwrap());
        assert_eq!(
            stats.constraints_updated, 0,
            "model must already be converged"
        );
        converged_allocs = converged_allocs.min(a);
    }
    assert_eq!(
        converged_allocs, 0,
        "a converged refit must run entirely out of the reusable workspace"
    );

    // (2) A working refit: assimilate (outside the counted region) a
    // pattern over the union of two existing extensions — already a union
    // of cells, so no cell splits — then count the full re-convergence.
    // Dozens of re-projections and residual scans run; the only permitted
    // allocations are the one-time growth of the per-constraint violation
    // and dirty arrays (now one entry longer), NOT per-projection or
    // per-cycle buffers.
    let union = exts[0].or(&exts[1]);
    model
        .assimilate_location(&union, data.target_mean(&union))
        .unwrap();
    let (stats, refit_allocs, _) = counted(|| model.refit(1e-9, 200).unwrap());
    assert!(
        stats.constraints_updated >= 5,
        "the overlapping pattern must force real re-projection work, got {stats:?}"
    );
    assert!(
        refit_allocs <= 4,
        "refit must not allocate per projection or per cycle: \
         {refit_allocs} allocations for {} re-projections over {} cycles",
        stats.constraints_updated,
        stats.cycles
    );
}

use sisd::data::{Column, Dataset};
use sisd::linalg::Matrix;
use sisd::search::{BeamConfig, BeamSearch};

/// A wide dataset (large `n`, so one extension clone is expensive) whose
/// condition language is eight `Eq` conditions on a single categorical
/// attribute: a depth-1 beam scores exactly the eight single-label
/// children of the root, whatever its width — so searches differing only
/// in `width` do identical generation, scoring, and logging work.
fn one_attribute_dataset(n: usize) -> Dataset {
    let mut rng = Xoshiro256pp::seed_from_u64(17);
    let labels: Vec<String> = (0..n).map(|i| format!("g{}", i % 8)).collect();
    let mut targets = Matrix::zeros(n, 1);
    for i in 0..n {
        targets[(i, 0)] = rng.normal() + (i % 8) as f64 * 0.1;
    }
    Dataset::new(
        "wide",
        vec!["group".into()],
        vec![Column::categorical_from_strs(
            &labels.iter().map(String::as_str).collect::<Vec<_>>(),
        )],
        vec!["y".into()],
        targets,
    )
}

#[test]
fn beam_levels_do_not_clone_next_frontier_parents() {
    // PR 4 left one known per-level allocation: the `width` best scored
    // results were cloned (intention + extension) into the next frontier
    // because the scored level moved into the top-k log immediately. The
    // beam now retains each scored level until the following level has
    // been generated and the frontier *borrows* it, so the clones are
    // gone — and with them the only width-dependent allocation of a
    // level transition. Pin that by comparing a `width = 1` search with a
    // `width = 8` search that do otherwise identical work (depth 1, all
    // eight children of the root generated, scored, and logged in both):
    // the old code paid `width × ext_bytes` in keeper clones (~57 KiB
    // difference here), the new code pays zero.
    const N: usize = 65_536;
    let data = one_attribute_dataset(N);
    let model = BackgroundModel::from_empirical(&data).unwrap();
    let cfg = |width: usize| BeamConfig {
        width,
        max_depth: 1,
        top_k: 20,
        ..BeamConfig::default()
    };
    // Warm lazy model state so the measured runs differ only in `width`.
    let warm = BeamSearch::new(cfg(8)).run(&data, &model);
    assert_eq!(
        warm.top.len(),
        8,
        "all eight groups must be scored and kept"
    );

    let measure = |width: usize| -> usize {
        let mut best = usize::MAX;
        for _ in 0..3 {
            let (res, _, bytes) = counted(|| BeamSearch::new(cfg(width)).run(&data, &model));
            assert_eq!(res.top.len(), 8);
            best = best.min(bytes);
        }
        best
    };
    let width1 = measure(1);
    let width8 = measure(8);
    let ext_bytes = N.div_ceil(64) * std::mem::size_of::<u64>();
    let extra = width8.saturating_sub(width1);
    assert!(
        extra < ext_bytes,
        "selecting a wider next frontier must not allocate per keeper: \
         extra={extra} bytes for 7 extra keepers vs {ext_bytes} bytes per \
         old-style extension clone (width1={width1}, width8={width8})"
    );
}

/// Like [`one_attribute_dataset`] but with 32 labels — the most the
/// condition language enumerates — so a depth-1 beam scores 32 children — enough (≥ 2 × the evaluator's min chunk) for the
/// scoring pass to actually fan out to the worker pool.
fn many_group_dataset(n: usize) -> Dataset {
    let mut rng = Xoshiro256pp::seed_from_u64(23);
    let labels: Vec<String> = (0..n).map(|i| format!("g{:02}", i % 32)).collect();
    let mut targets = Matrix::zeros(n, 1);
    for i in 0..n {
        targets[(i, 0)] = rng.normal() + (i % 32) as f64 * 0.05;
    }
    Dataset::new(
        "wide32",
        vec!["group".into()],
        vec![Column::categorical_from_strs(
            &labels.iter().map(String::as_str).collect::<Vec<_>>(),
        )],
        vec!["y".into()],
        targets,
    )
}

#[test]
fn steady_state_pooled_beam_levels_spawn_no_threads() {
    // Before the persistent pool, every parallel beam level paid a
    // `thread::scope` spawn/join round: thread handles, name strings, and
    // join packets allocated per level, per search, forever. The pool
    // spawns its workers once — on the first parallel level — and every
    // later level reuses them. Pin both halves: the worker count is
    // frozen after warmup while jobs keep flowing through the pool, and a
    // steady-state parallel search allocates only fixed per-job
    // bookkeeping over the identical serial search.
    const N: usize = 16_384;
    let data = many_group_dataset(N);
    let model = BackgroundModel::from_empirical(&data).unwrap();
    let cfg = BeamConfig {
        width: 8,
        max_depth: 1,
        top_k: 20,
        eval: EvalConfig::with_threads(4),
        ..BeamConfig::default()
    };
    // Cold run: first parallel level spawns the pool's workers.
    let warm = BeamSearch::new(cfg.clone()).run(&data, &model);
    assert_eq!(warm.top.len(), 20);
    let pool = sisd::par::PoolHandle::global().get();
    let workers = pool.workers();
    assert!(
        workers >= 1,
        "the 32-candidate scoring level must have reached the pool"
    );
    let jobs_before = pool.jobs_run();

    let mut steady = usize::MAX;
    for _ in 0..3 {
        let (res, a, _) = counted(|| BeamSearch::new(cfg.clone()).run(&data, &model));
        assert_eq!(res.top.len(), 20);
        steady = steady.min(a);
    }
    assert_eq!(
        pool.workers(),
        workers,
        "steady-state levels must reuse the persistent workers, not spawn"
    );
    assert!(
        pool.jobs_run() > jobs_before,
        "the measured searches must actually run through the pool"
    );

    // The same search serially: identical generation, scoring, and
    // logging, no pool. The pooled run may add a handful of fixed-size
    // job-bookkeeping allocations per level (job handle, output slots,
    // per-chunk result buffers) but nothing proportional to threads ×
    // levels × searches the way per-level spawning was.
    let serial_cfg = BeamConfig {
        eval: EvalConfig::default(),
        ..cfg.clone()
    };
    let mut serial = usize::MAX;
    for _ in 0..3 {
        let (res, a, _) = counted(|| BeamSearch::new(serial_cfg.clone()).run(&data, &model));
        assert_eq!(res.top.len(), 20);
        serial = serial.min(a);
    }
    assert!(
        steady <= serial + 64,
        "a warm-pool parallel level must cost only fixed job bookkeeping: \
         parallel={steady} allocations vs serial={serial}"
    );
}

use sisd::obs::{NullSink, Obs, ObsHandle};

#[test]
fn obs_layer_adds_zero_allocations_to_steady_state_beam_levels() {
    // The sisd-obs hard contract, allocation half: a disabled handle is a
    // `None` branch, and even an *enabled* counters-only handle is nothing
    // but relaxed atomic adds and monotonic clock reads — so steady-state
    // beam levels must allocate identically with obs off, and with obs on
    // over a `NullSink`. (The registry itself is leaked once, outside any
    // measured region; bit-identity of the results is pinned separately in
    // `obs_parity.rs`.)
    const N: usize = 16_384;
    let data = one_attribute_dataset(N);
    let model = BackgroundModel::from_empirical(&data).unwrap();
    let cfg = |obs: ObsHandle| BeamConfig {
        width: 8,
        max_depth: 1,
        top_k: 20,
        eval: EvalConfig::default().with_obs(obs),
        ..BeamConfig::default()
    };
    let measure = |obs: ObsHandle| -> usize {
        // Warm run absorbs lazy one-time state (per-cell factors, the
        // span-depth thread-local) so the counted runs are steady-state.
        let warm = BeamSearch::new(cfg(obs)).run(&data, &model);
        assert_eq!(warm.top.len(), 8);
        let mut best = usize::MAX;
        for _ in 0..3 {
            let (res, a, _) = counted(|| BeamSearch::new(cfg(obs)).run(&data, &model));
            assert_eq!(res.top.len(), 8);
            best = best.min(a);
        }
        best
    };
    let disabled = measure(ObsHandle::disabled());
    let null_sink = measure(Obs::leaked(Box::new(NullSink)));
    assert_eq!(
        disabled, null_sink,
        "an enabled counters-only obs handle must allocate exactly as much \
         as a disabled one on steady-state beam levels \
         (disabled={disabled}, null-sink={null_sink})"
    );
}
